package service

// Admission control: the single-process half of the roadmap's
// distributed solve fleet. Three mechanisms shed load before it can
// pile up behind the worker pool:
//
//   - a token bucket over all submissions (solve, async jobs, amends,
//     batch items), so a misbehaving client is throttled at a
//     configured sustained rate instead of filling the queue;
//   - per-priority queue budgets: background work (priority < 0) is
//     shed once the queue is half full, normal work (priority 0) at 90%,
//     and only elevated priorities may use the full queue — so
//     interactive traffic always finds room even under a background
//     flood;
//   - a cap on concurrently running synchronous sweeps, which execute
//     in the caller's HTTP handler goroutine and would otherwise pin
//     every HTTP worker.
//
// Every rejection is a *ShedError carrying a retry hint. The hint for
// queue rejections is derived from the observed queue-wait histogram
// (the p90 of the trace.PhaseQueueWait profile): a client told to come
// back after the queue's typical drain time has a real chance of being
// admitted, where a constant would either hammer or starve. Rate
// rejections use the token bucket's exact refill time. HTTP maps shed
// errors to 429 with a Retry-After header; see writeSubmitError.

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/trace"
)

// Shed sentinels, matchable with errors.Is through *ShedError.
var (
	// ErrRateLimited reports a submission shed by the token bucket.
	ErrRateLimited = errors.New("service: rate limited")
	// ErrSweepLimit reports a sweep shed by the in-flight sweep cap.
	ErrSweepLimit = errors.New("service: sweep limit")
)

// Shed-error codes, also the "code" of the HTTP 429 envelope.
const (
	ShedQueueFull   = "queue_full"
	ShedRateLimited = "rate_limited"
	ShedSweepLimit  = "sweep_limit"
)

// ShedError is a load-shedding rejection: the typed code that becomes
// the HTTP envelope code and a retry hint that becomes the Retry-After
// header. It wraps the matching sentinel (ErrQueueFull, ErrRateLimited,
// ErrSweepLimit), so errors.Is keeps working for callers of Submit.
type ShedError struct {
	// Code is the machine-readable rejection class: ShedQueueFull,
	// ShedRateLimited or ShedSweepLimit.
	Code string
	// RetryAfter is the suggested back-off before resubmitting; always
	// positive.
	RetryAfter time.Duration

	msg      string
	sentinel error
}

func (e *ShedError) Error() string { return e.msg }
func (e *ShedError) Unwrap() error { return e.sentinel }

// Admission tunes the load-shedding layer. The zero value disables rate
// admission and applies the default queue-budget ladder.
type Admission struct {
	// Rate is the sustained admitted submissions per second across all
	// entry points (token bucket); 0 disables rate admission.
	Rate float64
	// Burst is the token bucket depth; 0 means ceil(Rate), at least 1.
	Burst int
	// BackgroundShare is the fraction of QueueLimit that submissions
	// with priority < 0 may occupy; 0 means 0.5. Set to 1 to give
	// background work the full queue.
	BackgroundShare float64
	// NormalShare is the fraction of QueueLimit that submissions with
	// priority 0 may occupy; 0 means 0.9. Priorities above 0 always get
	// the full queue.
	NormalShare float64
}

func (a *Admission) defaults() {
	if a.BackgroundShare == 0 {
		a.BackgroundShare = 0.5
	}
	if a.NormalShare == 0 {
		a.NormalShare = 0.9
	}
	if a.Rate > 0 && a.Burst <= 0 {
		a.Burst = int(math.Ceil(a.Rate))
		if a.Burst < 1 {
			a.Burst = 1
		}
	}
}

// tokenBucket is a standard leaky token bucket. Guarded by Service.mu.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// take refills by the elapsed wall time and consumes one token,
// reporting the wait until a token would be available on failure.
func (tb *tokenBucket) take(now time.Time) (bool, time.Duration) {
	return tb.takeN(now, 1)
}

// takeN consumes n tokens atomically — all or none, so a batch is
// admitted or shed as a unit. n beyond the bucket depth can never
// succeed; the reported wait is then the full-refill time.
func (tb *tokenBucket) takeN(now time.Time, n float64) (bool, time.Duration) {
	if !tb.last.IsZero() {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	} else {
		tb.tokens = tb.burst
	}
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
	if tb.tokens >= n {
		tb.tokens -= n
		return true, 0
	}
	need := n
	if need > tb.burst {
		need = tb.burst
	}
	wait := time.Duration((need - tb.tokens) / tb.rate * float64(time.Second))
	return false, wait
}

// Retry-After clamp: never tell a client to come back in under a
// second (sub-second retries would re-create the storm being shed) or
// over a minute (the queue's state a minute out is unknowable).
const (
	minRetryAfter = time.Second
	maxRetryAfter = time.Minute
)

func clampRetry(d time.Duration) time.Duration {
	if d < minRetryAfter {
		return minRetryAfter
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// queueBudgetLocked is the effective queue capacity for a submission at
// the given priority, per the admission ladder. Always at least 1, so a
// tiny queue still admits one job of any priority. Callers hold s.mu.
func (s *Service) queueBudgetLocked(priority int) int {
	limit := s.cfg.QueueLimit
	switch {
	case priority < 0:
		limit = int(float64(limit) * s.cfg.Admission.BackgroundShare)
	case priority == 0:
		limit = int(float64(limit) * s.cfg.Admission.NormalShare)
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// admitLocked applies rate admission and the per-priority queue budget
// to one submission. Callers hold s.mu. Deferred batch-chain jobs count
// toward queue occupancy: they hold queue capacity even before their
// predecessor releases them into the heap.
func (s *Service) admitLocked(priority int) error {
	return s.admitNLocked(priority, 1)
}

// admitNLocked admits n submissions as a unit (all or none): the whole
// batch is shed with one 429 rather than partially enqueued. The queue
// budget is checked before the token bucket so a queue_full rejection
// has no side effect — a shed submission must not burn tokens and
// penalize the next, unrelated one. Callers hold s.mu.
func (s *Service) admitNLocked(priority, n int) error {
	budget := s.queueBudgetLocked(priority)
	if occupied := s.queue.Len() + s.deferred; occupied+n > budget {
		s.stats.shedQueue++
		return &ShedError{
			Code:       ShedQueueFull,
			RetryAfter: s.queueRetryLocked(),
			msg: fmt.Sprintf("service: queue full (%d queued + %d submitted over budget %d at priority %d)",
				occupied, n, budget, priority),
			sentinel: ErrQueueFull,
		}
	}
	if s.bucket.rate > 0 {
		if ok, wait := s.bucket.takeN(time.Now(), float64(n)); !ok {
			s.stats.shedRate++
			return &ShedError{
				Code:       ShedRateLimited,
				RetryAfter: clampRetry(wait),
				msg:        fmt.Sprintf("service: rate limited (%.4g submissions/s admitted)", s.bucket.rate),
				sentinel:   ErrRateLimited,
			}
		}
	}
	return nil
}

// queueRetryLocked derives the queue_full retry hint from the observed
// queue-wait histogram: the p90 of every finished job's submit-to-
// pickup wait, clamped to [1s, 60s]. Before any job has finished, the
// floor applies. Callers hold s.mu.
func (s *Service) queueRetryLocked() time.Duration {
	return clampRetry(time.Duration(histQuantileNS(s.prof.Hist(trace.PhaseQueueWait), 0.9)))
}

// histQuantileNS reads an approximate quantile off a log-bucketed
// histogram: the upper edge (2^pow ns) of the bucket holding the q-th
// observation. 0 for an empty or nil histogram.
func histQuantileNS(h *trace.Hist, q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.N
		if cum >= target {
			if b.Pow <= 0 {
				return 1
			}
			return int64(1) << uint(b.Pow)
		}
	}
	return 0
}
