package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		closeBounded(t, s)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHTTPEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// liveness
	var health map[string]any
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz body %v", health)
	}

	// async: submit, then poll to completion
	resp, data := postJSON(t, ts.URL+"/v1/jobs", fastRequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs status %d: %s", resp.StatusCode, data)
	}
	var job JobInfo
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" {
		t.Fatalf("no job id in %s", data)
	}
	for end := time.Now().Add(30 * time.Second); !job.Status.Finished(); {
		if time.Now().After(end) {
			t.Fatalf("job %s stuck %s", job.ID, job.Status)
		}
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &job)
	}
	if job.Status != StatusDone || job.Result == nil || !job.Result.Feasible {
		t.Fatalf("async job ended %s: %+v", job.Status, job.Result)
	}
	asyncComm := job.Result.Comm

	// sync: the identical request is served from the cache
	resp, data = postJSON(t, ts.URL+"/v1/solve", fastRequest())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /solve status %d: %s", resp.StatusCode, data)
	}
	var sync JobInfo
	if err := json.Unmarshal(data, &sync); err != nil {
		t.Fatal(err)
	}
	if !sync.CacheHit {
		t.Fatalf("identical sync request missed the cache: %s", data)
	}
	if sync.Result.Comm != asyncComm {
		t.Fatalf("sync comm %d != async comm %d", sync.Result.Comm, asyncComm)
	}

	// metrics reflect both jobs
	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Submitted != 2 || st.Completed != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("metrics after two jobs: %+v", st)
	}
	if st.TotalNodes == 0 || st.TotalLPIterations == 0 {
		t.Fatalf("solver effort not recorded: %+v", st)
	}
}

// TestHTTPSolveCancel cancels a synchronous solve by abandoning the
// request, then uses the metrics to show that the underlying branch
// and bound stopped: the worker frees up long before the job's time
// limit, and the node counter stays flat afterwards.
func TestHTTPSolveCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("long cancellation test")
	}
	_, ts := newTestServer(t, Config{Workers: 1})

	body, err := json.Marshal(heavyRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, rerr := http.DefaultClient.Do(req)
		errc <- rerr
	}()

	// wait until the solve is actually running, then hang up
	for end := time.Now().Add(10 * time.Second); ; {
		var st Stats
		getJSON(t, ts.URL+"/v1/stats", &st)
		if st.Running == 1 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("solve never started: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if rerr := <-errc; rerr == nil {
		t.Fatal("abandoned request returned no error")
	}

	// the request had a 120s budget; the worker must come free within
	// a couple of seconds or the cancellation did not reach the solver
	var st Stats
	for end := time.Now().Add(5 * time.Second); ; {
		getJSON(t, ts.URL+"/v1/stats", &st)
		if st.Running == 0 && st.InFlight == 0 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("branch and bound still running after cancel: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1 (%+v)", st.Cancelled, st)
	}
	// effort was recorded once when the interrupted solve returned and
	// must not grow afterwards: nothing is still searching
	nodes := st.TotalNodes
	time.Sleep(300 * time.Millisecond)
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.TotalNodes != nodes {
		t.Fatalf("node counter still moving after cancel: %d -> %d", nodes, st.TotalNodes)
	}
}

func TestHTTPJobCancelAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// occupy the worker, then cancel the job over HTTP
	resp, data := postJSON(t, ts.URL+"/v1/jobs", heavyRequest(8))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs status %d: %s", resp.StatusCode, data)
	}
	var job JobInfo
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	var after JobInfo
	if err := json.NewDecoder(dresp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || after.Status != StatusCancelled {
		t.Fatalf("DELETE -> %d, status %s", dresp.StatusCode, after.Status)
	}

	// error paths
	resp, _ = postJSON(t, ts.URL+"/v1/solve", map[string]any{"graph": ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty graph -> %d, want 400", resp.StatusCode)
	}
	badJSON, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	badJSON.Body.Close()
	if badJSON.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON -> %d, want 400", badJSON.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/zzz", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job -> %d, want 404", resp.StatusCode)
	}

	// a string device spec parses
	req := fastRequest()
	req.Device = DeviceSpec{}
	var raw map[string]any
	b, _ := json.Marshal(req)
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	raw["device"] = "xc4025"
	resp, data = postJSON(t, ts.URL+"/v1/solve", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("string device -> %d: %s", resp.StatusCode, data)
	}
}
