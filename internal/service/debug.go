package service

// Live search introspection and the per-job black box: the service half
// of the observability stack. The solver mirrors its search state into
// atomic snapshots (milp.SearchStatus) and records every node into a
// bounded keep-last ring (trace.BlackBox); this file attaches both to
// each fresh solve, runs the gap-stall watchdog over the mirror, and
// serves the results — GET /v1/debug/solves, /v1/jobs/{id}/spans and
// /v1/jobs/{id}/blackbox in http.go.

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/milp"
	"repro/internal/trace"
)

// beginSolve attaches the job's observability hooks — the solve span,
// the black-box ring, the live search mirror, the fault-injection test
// hook and the stall watchdog — to the options of a fresh solve. The
// returned func ends the solve span with the outcome and stops the
// watchdog; call it as soon as the solve returns.
func (s *Service) beginSolve(j *job, op *core.Options) func(res *core.Result, dinfo delta.Info, err error) {
	sp := j.rootSpan.Child("solve")
	op.Span = sp
	op.BlackBox = j.bb
	op.Status = j.live
	if s.cfg.InjectFault != nil {
		s.cfg.InjectFault(op)
	}
	stopWatch := s.watchStall(j, op.Trace)
	return func(res *core.Result, dinfo delta.Info, err error) {
		stopWatch()
		if dinfo.Path != "" {
			sp.SetStr("delta_path", dinfo.Path)
		}
		if err != nil {
			sp.SetStr("error", err.Error())
		}
		if res != nil {
			sp.SetNum("nodes", float64(res.Nodes))
			sp.SetNum("pivots", float64(res.LPIterations))
		}
		sp.End()
	}
}

// watchStall runs the gap-stall watchdog over one fresh solve: when the
// search's best bound and incumbent both fail to move for a full
// StallWindow, it emits one stall trace event, records and flushes the
// black box, and marks the job stalled. One-shot — a solve that stalls,
// recovers and stalls again is reported once. The returned func stops
// the watchdog; a no-op when the watchdog is disabled.
func (s *Service) watchStall(j *job, tr *trace.Tracer) func() {
	window := s.cfg.StallWindow
	if window <= 0 {
		return func() {}
	}
	poll := window / 4
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(poll)
		defer tick.Stop()
		var lastBound, lastInc float64
		var have bool
		lastMove := time.Now()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			snap, ok := j.live.Snapshot()
			if !ok || !snap.Running || snap.Nodes == 0 {
				// the search is not exploring yet (build, presolve, root
				// LP, cuts, dive) or already finished: not a stall
				lastMove = time.Now()
				have = false
				continue
			}
			bound, inc := snap.Bound, snap.Incumbent
			if !have || bound != lastBound || inc != lastInc {
				have = true
				lastBound, lastInc = bound, inc
				lastMove = time.Now()
				continue
			}
			if time.Since(lastMove) < window {
				continue
			}
			j.stalled.Store(true)
			e := trace.Event{
				Kind:  trace.KindStall,
				Nodes: snap.Nodes,
				Gap:   snap.Gap,
				Msg:   "bound and incumbent unmoved for " + window.String(),
			}
			if snap.HasBound {
				e.Bound = snap.Bound
			}
			if snap.HasIncumbent {
				e.HasIncumbent = true
				e.Incumbent = snap.Incumbent
			}
			tr.Emit(e)
			j.bb.Record(trace.BBEvent{
				Kind:      trace.BBStall,
				Node:      snap.Nodes,
				Bound:     snap.Bound,
				Incumbent: snap.Incumbent,
				Msg:       "watchdog: bound and incumbent unmoved for " + window.String(),
			})
			j.bb.Flush("stall")
			return
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// SolveDebug is one in-flight solve as reported by GET /v1/debug/solves:
// the job identity plus a point-in-time snapshot of its running search.
// Search is nil while the job is in a pre-search stage (build, presolve,
// root LP) or when it joined another job's flight (the shared search is
// mirrored on the flight leader's entry).
type SolveDebug struct {
	ID        string  `json:"id"`
	Graph     string  `json:"graph"`
	Status    JobStatus `json:"status"`
	RunningMS float64 `json:"running_ms"`
	// TraceID names the job's span tree (and the caller's distributed
	// trace, when the submission carried a traceparent header).
	TraceID string `json:"trace_id,omitempty"`
	// Stalled reports that the gap-stall watchdog fired for this job.
	Stalled bool `json:"stalled,omitempty"`
	// Search is the live search snapshot: nodes, incumbent, bound, gap,
	// open subproblems, steals and per-worker phases.
	Search *milp.SearchSnapshot `json:"search,omitempty"`
}

// DebugSolves snapshots every currently running job for the live
// introspection endpoint. Cheap enough to poll: the search figures come
// from atomic mirrors maintained by the solver, not from locks shared
// with the search loops.
func (s *Service) DebugSolves() []SolveDebug {
	now := time.Now()
	s.mu.Lock()
	var out []SolveDebug
	for _, j := range s.jobs {
		if j.status != StatusRunning {
			continue
		}
		d := SolveDebug{
			ID:      j.id,
			Graph:   j.req.inst.Graph.Name,
			Status:  j.status,
			TraceID: j.spans.TraceID(),
			Stalled: j.stalled.Load(),
		}
		if !j.started.IsZero() {
			d.RunningMS = durMS(now.Sub(j.started))
		}
		if snap, ok := j.live.Snapshot(); ok {
			d.Search = &snap
		}
		out = append(out, d)
	}
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Spans returns the finished spans of a job's trace, oldest first. The
// tree is live: polling while the job runs shows spans as they end, and
// the request root appears once the job reaches a terminal state.
func (s *Service) Spans(id string) ([]trace.SpanRec, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	return j.spans.Snapshot(), nil
}

// BlackBox returns the black-box dump of a job: the frozen anomaly
// capture when the box flushed (worker panic, deadline, certification
// failure, watchdog stall), otherwise the rolling live tail.
func (s *Service) BlackBox(id string) (trace.BBDump, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return trace.BBDump{}, ErrUnknownJob
	}
	return j.bb.Dump(), nil
}

// TraceContext returns the W3C traceparent value identifying a job's
// root span, echoed on submission responses so callers can stitch the
// job into their own distributed trace.
func (s *Service) TraceContext(id string) (string, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return "", ErrUnknownJob
	}
	return j.spans.Traceparent(j.rootSpan), nil
}
