package service

// The design-space sweep API: one request scans a (N, L, Ms, C, α)
// grid over a fixed graph and allocation, walking neighboring points
// through the delta engine so consecutive solves share presolve work,
// root bases and — on monotone tightening steps — whole conclusions.
// The axis order puts the warmable axes (scratch, capacity, α)
// innermost: consecutive points then differ only in constraint bounds,
// which the engine re-solves warm instead of cold.

import (
	"context"
	"fmt"
	"time"
)

// maxSweepPoints bounds one sweep request; the grid is solved
// sequentially in the caller's goroutine, so an unbounded product
// would turn one request into an unbounded amount of synchronous work.
const maxSweepPoints = 256

// SweepRequest is a base solve request plus the axes to scan. Empty
// axes inherit the base request's single value.
type SweepRequest struct {
	Request
	Sweep SweepAxes `json:"sweep"`
}

// SweepAxes are the scanned design-space dimensions. N and L are
// structural (each step rebuilds the model cold); CapacityFG,
// ScratchMem and Alpha are pure bound edits (each step re-solves warm
// from its neighbor).
type SweepAxes struct {
	N          []int     `json:"n,omitempty"`
	L          []int     `json:"l,omitempty"`
	CapacityFG []int     `json:"capacity_fg,omitempty"`
	ScratchMem []int     `json:"scratch_mem,omitempty"`
	Alpha      []float64 `json:"alpha,omitempty"`
}

// SweepPoint is one solved grid point.
type SweepPoint struct {
	N          int     `json:"n"`
	L          int     `json:"l"`
	CapacityFG int     `json:"capacity_fg,omitempty"`
	ScratchMem int     `json:"scratch_mem,omitempty"`
	Alpha      float64 `json:"alpha,omitempty"`
	// Class and Path report the delta engine's dispatch against the
	// previous point (cold for the first point of each structural
	// cell).
	Class string `json:"class,omitempty"`
	Path  string `json:"path"`
	// Verdict summary of the point's solve.
	Feasible bool    `json:"feasible"`
	Optimal  bool    `json:"optimal"`
	Comm     int     `json:"comm,omitempty"`
	MS       float64 `json:"ms"`
}

// SweepResult is the solved grid plus the dispatch accounting.
type SweepResult struct {
	Points []SweepPoint `json:"points"`
	Cold   int          `json:"cold"`
	Warm   int          `json:"warm"`
	Reuse  int          `json:"reuse"`
	// TotalMS is the sweep's wall time.
	TotalMS float64 `json:"total_ms"`
}

// Sweep solves the request's design-space grid sequentially, chaining
// each point's solve off the previous one through the delta engine.
// The sweep runs synchronously under ctx in the caller's goroutine —
// it does not enter the job queue — and a cancelled ctx returns the
// context error. Invalid axes and oversized grids fail before any
// solve.
func (s *Service) Sweep(ctx context.Context, req *SweepRequest) (*SweepResult, error) {
	axes := req.Sweep
	ns := axes.N
	if len(ns) == 0 {
		ns = []int{req.Options.N}
	}
	ls := axes.L
	if len(ls) == 0 {
		ls = []int{req.Options.L}
	}
	caps := axes.CapacityFG
	if len(caps) == 0 {
		caps = []int{req.Device.CapacityFG}
	}
	mems := axes.ScratchMem
	if len(mems) == 0 {
		mems = []int{req.Device.ScratchMem}
	}
	alphas := axes.Alpha
	if len(alphas) == 0 {
		alphas = []float64{req.Device.Alpha}
	}
	total := len(ns) * len(ls) * len(mems) * len(caps) * len(alphas)
	if total > maxSweepPoints {
		return nil, fmt.Errorf("service: sweep grid has %d points (limit %d)", total, maxSweepPoints)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	// Sweeps run synchronously in the caller's goroutine — over HTTP
	// that is an HTTP worker — so without a cap, MaxSweeps+1 concurrent
	// sweep requests could pin every server thread. Shed the excess
	// with a typed 429 instead.
	if limit := s.cfg.MaxSweeps; limit > 0 && s.sweepsRunning >= limit {
		s.stats.shedSweep++
		retry := s.queueRetryLocked()
		running := s.sweepsRunning
		s.mu.Unlock()
		return nil, &ShedError{
			Code:       ShedSweepLimit,
			RetryAfter: retry,
			msg:        fmt.Sprintf("service: %d sweeps already running (limit %d)", running, limit),
			sentinel:   ErrSweepLimit,
		}
	}
	s.sweepsRunning++
	s.stats.sweeps++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.sweepsRunning--
		s.mu.Unlock()
	}()

	start := time.Now()
	out := &SweepResult{Points: make([]SweepPoint, 0, total)}
	for _, n := range ns {
		for _, l := range ls {
			// each structural cell starts a fresh warm chain: carrying a
			// base across an N or L step would just classify structural
			prevKey := ""
			for _, ms := range mems {
				for _, c := range caps {
					for _, a := range alphas {
						if err := ctx.Err(); err != nil {
							return nil, err
						}
						r := req.Request
						r.Options.N, r.Options.L = n, l
						r.Device.CapacityFG, r.Device.ScratchMem, r.Device.Alpha = c, ms, a
						ci, err := r.compile(s.cfg.DefaultTimeout, s.cfg.DefaultParallelism)
						if err != nil {
							return nil, fmt.Errorf("sweep point N=%d L=%d Ms=%d C=%d alpha=%g: %w", n, l, ms, c, a, err)
						}
						pstart := time.Now()
						res, info, err := s.delta.Solve(ctx, ci.key, prevKey, ci.inst, ci.opt)
						if err != nil {
							return nil, fmt.Errorf("sweep point N=%d L=%d Ms=%d C=%d alpha=%g: %w", n, l, ms, c, a, err)
						}
						if res.Cancelled {
							return nil, context.Canceled
						}
						prevKey = ci.key
						pt := SweepPoint{
							N: n, L: l, CapacityFG: c, ScratchMem: ms, Alpha: a,
							Class: info.Class, Path: info.Path,
							Feasible: res.Feasible, Optimal: res.Optimal,
							MS: durMS(time.Since(pstart)),
						}
						if res.Solution != nil {
							pt.Comm = res.Solution.Comm
						}
						switch info.Path {
						case "warm":
							out.Warm++
						case "reuse":
							out.Reuse++
						default:
							out.Cold++
						}
						out.Points = append(out.Points, pt)
						s.mu.Lock()
						s.stats.sweepPoints++
						if res != nil {
							s.stats.nodes += uint64(res.Nodes)
							s.stats.pivots += uint64(res.LPIterations)
						}
						s.mu.Unlock()
					}
				}
			}
		}
	}
	out.TotalMS = durMS(time.Since(start))
	return out, nil
}
