package service

// Batch submission: up to Config.MaxBatch solve requests in one call,
// admitted atomically (the whole batch or none), deduplicated through
// the same canonical-key cache + singleflight as individual submits,
// and — the point — warm-chained: items that differ only in device
// parameters (capacity, alpha, scratch memory) are linked into chains
// in sweep order, each successor deferred until its predecessor
// finishes so the delta engine finds the predecessor's cached build
// and re-solves warm instead of cold. A design-space exploration
// submitted as a batch costs one cold solve per structural family
// plus cheap warm re-solves, instead of K cold solves.

import (
	"fmt"
	"sort"
	"time"
)

// ErrBatchTooLarge reports a batch that can never be accepted whole:
// more items than Config.MaxBatch, or (with rate admission enabled)
// more items than the token bucket's Burst depth. Non-retryable.
var ErrBatchTooLarge = fmt.Errorf("service: batch too large")

// ErrEmptyBatch reports a batch with no items.
var ErrEmptyBatch = fmt.Errorf("service: empty batch")

// BatchRequest is the wire form of POST /v1/batch.
type BatchRequest struct {
	Items []*Request `json:"items"`
}

// batchRecord tracks one batch for GET /v1/batch/{id}. Guarded by
// Service.mu.
type batchRecord struct {
	id        string
	jobIDs    []string
	chains    int
	submitted time.Time
}

// BatchInfo is the JSON view of a batch: its per-item jobs in
// submission order, the number of warm chains formed, and whether
// every job has reached a terminal state. Jobs evicted from the
// history window before the batch is queried report status "expired".
type BatchInfo struct {
	ID          string    `json:"id"`
	SubmittedAt time.Time `json:"submitted_at"`
	// Chains is the number of warm chains the batch was grouped into
	// (structural families; each costs at most one cold solve).
	Chains int `json:"chains"`
	// Done reports that every job in the batch is terminal.
	Done bool `json:"done"`
	Jobs []JobInfo `json:"jobs"`
}

// StatusExpired is reported by batch status for jobs already evicted
// from the finished-job history window; no live job ever carries it.
const StatusExpired JobStatus = "expired"

// SubmitBatch validates, admits and enqueues a batch of requests,
// returning the batch view with one queued job per item. Admission is
// atomic: if any item fails validation, or the batch does not fit the
// rate/queue budget as a whole, nothing is enqueued. Items sharing a
// structural signature (same graph, allocation and options; different
// device parameters) are chained in sweep order — ascending scratch
// memory, capacity, alpha — and each chain successor waits for its
// predecessor, re-solving warm from the predecessor's cached build.
func (s *Service) SubmitBatch(reqs []*Request) (BatchInfo, error) {
	if len(reqs) == 0 {
		return BatchInfo{}, ErrEmptyBatch
	}
	if len(reqs) > s.cfg.MaxBatch {
		return BatchInfo{}, fmt.Errorf("%w: %d items (max %d)", ErrBatchTooLarge, len(reqs), s.cfg.MaxBatch)
	}
	// A batch larger than the token bucket's depth can never be
	// admitted, no matter how long the client waits; rejecting it as
	// retryable rate_limited would have the client retry forever. Fail
	// it up front as non-retryable (HTTP 400), like an over-MaxBatch
	// batch.
	if s.cfg.Admission.Rate > 0 && len(reqs) > s.cfg.Admission.Burst {
		return BatchInfo{}, fmt.Errorf("%w: %d items exceed the admission burst %d and can never be admitted",
			ErrBatchTooLarge, len(reqs), s.cfg.Admission.Burst)
	}
	cis := make([]*instance, len(reqs))
	for i, r := range reqs {
		ci, err := r.compile(s.cfg.DefaultTimeout, s.cfg.DefaultParallelism)
		if err != nil {
			return BatchInfo{}, fmt.Errorf("batch item %d: %w", i, err)
		}
		cis[i] = ci
	}

	// Group items into warm chains by structural signature and order
	// each chain like a sweep: ascending scratch memory, then capacity,
	// then alpha, then submission order. Neighboring bound sets keep
	// the delta small, which keeps the warm starts effective.
	// Record-mode items are never chained (they bypass cache and
	// singleflight by design), and admission uses the lowest priority
	// in the batch so a mixed batch cannot use a budget its background
	// items would be denied.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := cis[order[a]], cis[order[b]]
		if ia.chain != ib.chain {
			return ia.chain < ib.chain
		}
		da, db := ia.inst.Device, ib.inst.Device
		if da.ScratchMem != db.ScratchMem {
			return da.ScratchMem < db.ScratchMem
		}
		if da.CapacityFG != db.CapacityFG {
			return da.CapacityFG < db.CapacityFG
		}
		if da.Alpha != db.Alpha {
			return da.Alpha < db.Alpha
		}
		return order[a] < order[b]
	})

	minPriority := reqs[0].Priority
	for _, r := range reqs[1:] {
		if r.Priority < minPriority {
			minPriority = r.Priority
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return BatchInfo{}, ErrClosed
	}
	if err := s.admitNLocked(minPriority, len(reqs)); err != nil {
		return BatchInfo{}, err
	}

	s.batchSeq++
	batchID := fmt.Sprintf("b%08x", s.batchSeq)
	rec := &batchRecord{id: batchID, jobIDs: make([]string, len(reqs)), submitted: time.Now()}

	// Enqueue in chain order. The first job of each chain (or any
	// record-mode job) runs immediately; successors are deferred with
	// their predecessor's canonical key as warm anchor. Identical items
	// (equal canonical keys) chain too: by the time the duplicate runs,
	// its result is already cached, so the solve happens exactly once.
	var prevChain string
	var prevJob *job
	chains := 0
	for _, idx := range order {
		ci := cis[idx]
		// preadmitted: admitNLocked charged the whole batch above (n
		// tokens, n queue slots) with s.mu held throughout, so
		// enqueueLocked must not re-admit — and cannot shed — here.
		cl := &chainLink{batchID: batchID, preadmitted: true}
		chained := !ci.record && prevJob != nil && prevChain == ci.chain
		if chained {
			cl.baseKey = prevJob.req.key
			cl.defer_ = true
		} else {
			chains++
		}
		id, err := s.enqueueLocked(ci, reqs[idx], nil, cl)
		if err != nil {
			return BatchInfo{}, fmt.Errorf("batch item %d: %w", idx, err)
		}
		j := s.jobs[id]
		if chained {
			prevJob.nextID = id
		}
		if !ci.record {
			prevChain, prevJob = ci.chain, j
		}
		rec.jobIDs[idx] = id
	}
	rec.chains = chains
	s.stats.batches++
	s.batches[batchID] = rec
	s.batchOrder = append(s.batchOrder, batchID)
	if evict := len(s.batchOrder) - s.cfg.History; evict > 0 {
		for _, id := range s.batchOrder[:evict] {
			delete(s.batches, id)
		}
		n := copy(s.batchOrder, s.batchOrder[evict:])
		clear(s.batchOrder[n:])
		s.batchOrder = s.batchOrder[:n]
	}
	return s.batchInfoLocked(rec), nil
}

// Batch returns the state of a batch and its jobs. ErrUnknownJob for
// unknown or evicted batch ids.
func (s *Service) Batch(id string) (BatchInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.batches[id]
	if !ok {
		return BatchInfo{}, ErrUnknownJob
	}
	return s.batchInfoLocked(rec), nil
}

func (s *Service) batchInfoLocked(rec *batchRecord) BatchInfo {
	bi := BatchInfo{
		ID:          rec.id,
		SubmittedAt: rec.submitted,
		Chains:      rec.chains,
		Done:        true,
		Jobs:        make([]JobInfo, 0, len(rec.jobIDs)),
	}
	for _, id := range rec.jobIDs {
		j, ok := s.jobs[id]
		if !ok {
			// evicted from history: terminal by definition
			bi.Jobs = append(bi.Jobs, JobInfo{ID: id, Status: StatusExpired, Batch: rec.id})
			continue
		}
		if !j.status.Finished() {
			bi.Done = false
		}
		bi.Jobs = append(bi.Jobs, s.infoLocked(j))
	}
	return bi
}
