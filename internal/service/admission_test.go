package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
	"unsafe"
)

// TestOverloadStorm saturates a tiny queue from many goroutines over
// HTTP and checks the load-shedding contract: every rejection is a
// well-formed 429 envelope with a typed queue_full code and a positive
// integral Retry-After, and every accepted job still finishes. Run
// under -race in CI.
func TestOverloadStorm(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueLimit: 3})

	// pin the single worker so storm submissions pile into the queue
	blocker, err := s.Submit(heavyRequest(900))
	if err != nil {
		t.Fatal(err)
	}
	for s.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}

	body, err := json.Marshal(fastRequest())
	if err != nil {
		t.Fatal(err)
	}
	const fan = 24
	type outcome struct {
		status int
		code   string
		retry  string
		jobID  string
		body   string
	}
	outcomes := make([]outcome, fan)
	var wg sync.WaitGroup
	for i := 0; i < fan; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
			if err != nil {
				outcomes[i] = outcome{status: -1, body: err.Error()}
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			o := outcome{status: resp.StatusCode, retry: resp.Header.Get("Retry-After"), body: string(data)}
			if resp.StatusCode == http.StatusAccepted {
				var info JobInfo
				if json.Unmarshal(data, &info) == nil {
					o.jobID = info.ID
				}
			} else {
				var e errorEnvelope
				if json.Unmarshal(data, &e) == nil {
					o.code = e.Error.Code
				}
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()

	var accepted []string
	rejected := 0
	for i, o := range outcomes {
		switch o.status {
		case http.StatusAccepted:
			if o.jobID == "" {
				t.Fatalf("request %d: 202 without a job id: %s", i, o.body)
			}
			accepted = append(accepted, o.jobID)
		case http.StatusTooManyRequests:
			rejected++
			if o.code != ShedQueueFull {
				t.Fatalf("request %d: 429 code %q, want queue_full: %s", i, o.code, o.body)
			}
			secs, err := strconv.Atoi(o.retry)
			if err != nil || secs < 1 {
				t.Fatalf("request %d: Retry-After %q, want a positive integer", i, o.retry)
			}
		default:
			t.Fatalf("request %d: status %d, want 202 or 429: %s", i, o.status, o.body)
		}
	}
	if len(accepted) == 0 || rejected == 0 {
		t.Fatalf("storm split accepted=%d rejected=%d; want both nonzero", len(accepted), rejected)
	}
	// QueueLimit 3 at the normal-priority budget (90%) admits 2 queued
	// jobs while the worker is pinned
	if len(accepted) > 2 {
		t.Fatalf("%d accepted, want at most the priority-0 budget of 2", len(accepted))
	}
	if st := s.Stats(); st.ShedQueueFull != uint64(rejected) {
		t.Fatalf("stats shed_queue_full = %d, want %d", st.ShedQueueFull, rejected)
	}

	// unblock the worker: every accepted job must run to completion
	s.Cancel(blocker)
	waitFinished(t, s, blocker, 10*time.Second)
	for _, id := range accepted {
		if info := waitFinished(t, s, id, 30*time.Second); info.Status != StatusDone {
			t.Fatalf("accepted job %s: %s (%s)", id, info.Status, info.Error)
		}
	}
}

// TestRateLimitAdmission pins the token bucket: Burst submissions pass,
// the next is shed with a typed rate_limited error whose retry hint
// reflects the (deliberately glacial) refill rate.
func TestRateLimitAdmission(t *testing.T) {
	s := New(Config{Workers: 2, Admission: Admission{Rate: 0.001, Burst: 2}})
	defer closeBounded(t, s)

	for i := 0; i < 2; i++ {
		if _, err := s.Submit(fastRequest()); err != nil {
			t.Fatalf("submission %d within burst: %v", i, err)
		}
	}
	_, err := s.Submit(fastRequest())
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("rate rejection is %T, want *ShedError", err)
	}
	if shed.Code != ShedRateLimited || shed.RetryAfter < time.Second {
		t.Fatalf("shed = {code:%q retry:%v}", shed.Code, shed.RetryAfter)
	}
	if st := s.Stats(); st.ShedRateLimited != 1 {
		t.Fatalf("stats shed_rate_limited = %d, want 1", st.ShedRateLimited)
	}
}

// TestPriorityQueueBudgets walks the admission ladder on one queue:
// background work is shed at half the queue, normal work at 90%, and
// elevated priorities reach the full limit.
func TestPriorityQueueBudgets(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 10})

	at := func(i, priority int) error {
		r := heavyRequest(i)
		r.Priority = priority
		_, err := s.Submit(r)
		return err
	}

	blocker, err := s.Submit(heavyRequest(800)) // pins the worker
	if err != nil {
		t.Fatal(err)
	}
	for s.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}

	// background budget: 50% of 10
	for i := 0; i < 5; i++ {
		if err := at(810+i, -1); err != nil {
			t.Fatalf("background %d: %v", i, err)
		}
	}
	if err := at(819, -1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("6th background admitted past its budget: %v", err)
	}
	// normal budget: 90% of 10, so 4 more fit on top of the 5 queued
	for i := 0; i < 4; i++ {
		if err := at(820+i, 0); err != nil {
			t.Fatalf("normal %d: %v", i, err)
		}
	}
	if err := at(829, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("normal submission admitted past its budget: %v", err)
	}
	// elevated priority reaches the full queue
	if err := at(830, 5); err != nil {
		t.Fatalf("elevated submission at 9/10: %v", err)
	}
	if err := at(831, 5); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("elevated submission admitted past QueueLimit: %v", err)
	}

	s.Cancel(blocker)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = s.Close(ctx) // cancels the queued heavies
}

// TestSweepLimitShed pins the in-flight sweep cap: at the limit, Sweep
// sheds with a typed sweep_limit 429 error instead of queueing behind
// the running sweeps, and recovers once a slot frees.
func TestSweepLimitShed(t *testing.T) {
	s := New(Config{Workers: 2, MaxSweeps: 1})
	defer closeBounded(t, s)
	ctx := context.Background()

	s.mu.Lock()
	s.sweepsRunning = 1 // simulate a sweep pinned to another handler
	s.mu.Unlock()

	sreq := &SweepRequest{Request: *fastRequest()}
	_, err := s.Sweep(ctx, sreq)
	if !errors.Is(err, ErrSweepLimit) {
		t.Fatalf("err = %v, want ErrSweepLimit", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Code != ShedSweepLimit || shed.RetryAfter <= 0 {
		t.Fatalf("sweep shed = %v", err)
	}
	if st := s.Stats(); st.ShedSweepLimit != 1 || st.SweepsRunning != 1 {
		t.Fatalf("stats shed_sweep_limit=%d sweeps_running=%d", st.ShedSweepLimit, st.SweepsRunning)
	}

	s.mu.Lock()
	s.sweepsRunning = 0
	s.mu.Unlock()
	if _, err := s.Sweep(ctx, sreq); err != nil {
		t.Fatalf("sweep below the cap: %v", err)
	}
	if st := s.Stats(); st.SweepsRunning != 0 {
		t.Fatalf("sweeps_running gauge stuck at %d", st.SweepsRunning)
	}
}

// TestQueueFullPreservesTokens pins the admission order: the queue
// budget is checked before the token bucket, so a queue_full rejection
// burns no tokens. (The old order consumed a token first, turning
// repeat rejections into spurious rate_limited errors and penalizing
// the next unrelated submission for work that was never admitted.)
func TestQueueFullPreservesTokens(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 1, Admission: Admission{Rate: 0.001, Burst: 3}})

	blocker, err := s.Submit(heavyRequest(840)) // token 3→2; pins the worker
	if err != nil {
		t.Fatal(err)
	}
	for s.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}
	queued := heavyRequest(841)
	queued.Priority = 1 // full queue budget of 1
	if _, err := s.Submit(queued); err != nil {
		t.Fatal(err) // token 2→1; fills the queue
	}

	// both rejections must be queue_full and cost nothing: with the old
	// token-first order the first shed burned the last token and the
	// second came back rate_limited
	for i := 0; i < 2; i++ {
		over := heavyRequest(842)
		over.Priority = 1
		_, err := s.Submit(over)
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("over-budget submit %d: %v, want ErrQueueFull", i, err)
		}
	}
	if st := s.Stats(); st.ShedQueueFull != 2 || st.ShedRateLimited != 0 {
		t.Fatalf("stats shed_queue_full=%d shed_rate_limited=%d, want 2/0", st.ShedQueueFull, st.ShedRateLimited)
	}

	// drain the queue and spend the preserved token
	s.Cancel(blocker)
	waitFinished(t, s, blocker, 10*time.Second)
	for s.Stats().Queued != 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(heavyRequest(843)); err != nil {
		t.Fatalf("submit after queue drain: %v (queue_full sheds burned the token)", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = s.Close(ctx) // cancels the running heavies
}

// TestBodyTooLarge pins the request-size cap: every decoding endpoint
// rejects an oversized body with the typed 413 envelope, and normal
// bodies still pass.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 512})

	big := fmt.Sprintf(`{"graph": %q}`, strings.Repeat("x", 2048))
	for _, ep := range []string{"/v1/solve", "/v1/jobs", "/v1/sweep", "/v1/batch", "/v1/jobs/j1/amend"} {
		resp, err := http.Post(ts.URL+ep, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatalf("%s: %v", ep, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413: %s", ep, resp.StatusCode, data)
		}
		var e errorEnvelope
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatalf("%s: 413 body is not the error envelope: %s", ep, data)
		}
		if e.Error.Code != "body_too_large" || e.Error.Message == "" {
			t.Fatalf("%s: envelope %+v", ep, e.Error)
		}
	}

	// a small valid request still decodes under the cap
	var info JobInfo
	postV1(t, ts.URL+"/v1/jobs", fastRequest(), http.StatusAccepted, &info)
	if info.ID == "" {
		t.Fatal("valid request rejected under the body cap")
	}
}

// TestHistoryEvictionShrinksTogether is the regression test for the
// doneOrder re-slicing leak: eviction must shrink the job map and the
// order slice in lockstep, and the slice's backing array must not
// drift (the old s.doneOrder[1:] kept every evicted ID reachable and
// marched the data pointer through an ever-growing array).
func TestHistoryEvictionShrinksTogether(t *testing.T) {
	s := New(Config{Workers: 1, History: 3})
	defer closeBounded(t, s)
	ctx := context.Background()

	var base *string
	const total = 10
	for i := 0; i < total; i++ {
		if _, err := s.Solve(ctx, fastRequest()); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if i == 5 {
			// past the first eviction: the backing array must be stable
			// from here on
			s.mu.Lock()
			base = unsafe.SliceData(s.doneOrder)
			s.mu.Unlock()
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.doneOrder) != 3 {
		t.Fatalf("doneOrder holds %d ids, want History=3", len(s.doneOrder))
	}
	if len(s.jobs) != len(s.doneOrder) {
		t.Fatalf("jobs map holds %d records but doneOrder %d: eviction leaks job records",
			len(s.jobs), len(s.doneOrder))
	}
	for _, id := range s.doneOrder {
		if _, ok := s.jobs[id]; !ok {
			t.Fatalf("doneOrder names %s but the map lacks it", id)
		}
	}
	if ptr := unsafe.SliceData(s.doneOrder); ptr != base {
		t.Fatal("doneOrder backing array drifted across evictions: eviction re-slices instead of copying down")
	}
}
