package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/randgraph"
)

// fastRequest returns the HAL diffeq benchmark with an allocation that
// solves optimally in well under a second: the workhorse for cache and
// determinism assertions.
func fastRequest() *Request {
	return &Request{
		Graph: benchmarks.Diffeq().String(),
		Allocation: map[string]int{
			"add16": 1, "sub16": 1, "mul16": 2, "cmp16": 1,
		},
		Options: SolveOptions{Options: core.Options{N: 2, L: 2, PrimeHeuristic: true}},
	}
}

// heavyRequest returns a paper-style random graph squeezed into too
// many XC4010 segments: the search space is large enough that the
// solve runs for tens of seconds unless cancelled. The name suffix
// gives each call a distinct instance identity.
func heavyRequest(i int) *Request {
	g := strings.Replace(randgraph.MustPaper(1).String(),
		"graph graph1", fmt.Sprintf("graph heavy%d", i), 1)
	return &Request{
		Graph:    g,
		Options:  SolveOptions{Options: core.Options{N: 5, L: 1}, TimeLimitMS: 120000},
		Priority: 10,
	}
}

// closeBounded shuts the service down with a short grace period so a
// failing test does not wait out every in-flight time limit.
func closeBounded(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Close(ctx)
}

func waitFinished(t *testing.T, s *Service, id string, deadline time.Duration) JobInfo {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		info, err := s.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if info.Status.Finished() {
			return info
		}
		if time.Now().After(end) {
			t.Fatalf("job %s still %s after %v", id, info.Status, deadline)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMixedLoad fires 32 jobs at a 4-worker service: 8 heavy distinct
// instances that get cancelled mid-solve, 20 identical fast instances
// that must deduplicate, and 4 queued jobs cancelled before they run.
// It asserts cancellation latency, cache hits and deterministic
// objectives, and — because the fast jobs can only start once the
// cancelled heavy solves release their workers — that cancellation
// really stops the branch and bound.
func TestMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("long concurrency test")
	}
	s := New(Config{Workers: 4, DefaultTimeout: 60 * time.Second})
	defer closeBounded(t, s)

	// 8 heavy jobs at high priority: 4 start immediately, 4 queue.
	var heavy []string
	for i := 0; i < 8; i++ {
		id, err := s.Submit(heavyRequest(i))
		if err != nil {
			t.Fatal(err)
		}
		heavy = append(heavy, id)
	}

	// 20 identical fast jobs behind them.
	var fast []string
	for i := 0; i < 20; i++ {
		id, err := s.Submit(fastRequest())
		if err != nil {
			t.Fatal(err)
		}
		fast = append(fast, id)
	}

	// 4 low-priority jobs cancelled while still queued (all workers are
	// held by heavy solves, so they cannot have started).
	for i := 0; i < 4; i++ {
		req := fastRequest()
		req.Priority = -5
		id, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Cancel(id) {
			t.Fatalf("queued job %s not cancellable", id)
		}
		info := waitFinished(t, s, id, time.Second)
		if info.Status != StatusCancelled {
			t.Fatalf("queued-cancelled job %s: status %s", id, info.Status)
		}
		if info.CacheHit {
			t.Fatalf("queued-cancelled job %s claims a cache hit", id)
		}
	}

	// Wait until the pool is saturated with heavy solves, then cancel
	// all of them. Finalization is decoupled from the solver's poll
	// cadence, so each job must settle within 100ms.
	for end := time.Now().Add(10 * time.Second); ; {
		if s.Stats().Running == 4 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("pool never saturated: %+v", s.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, id := range heavy {
		start := time.Now()
		s.Cancel(id)
		info := waitFinished(t, s, id, 100*time.Millisecond)
		if lat := time.Since(start); lat > 100*time.Millisecond {
			t.Fatalf("cancellation of %s took %v", id, lat)
		}
		if info.Status != StatusCancelled {
			t.Fatalf("heavy job %s: status %s, want cancelled", id, info.Status)
		}
	}

	// The fast jobs only run once the cancelled heavy solves actually
	// stop and free their workers — a generous bound still proves the
	// branch and bound obeyed the cancellation.
	comms := map[int]int{}
	for _, id := range fast {
		info := waitFinished(t, s, id, 30*time.Second)
		if info.Status != StatusDone {
			t.Fatalf("fast job %s: status %s (%s)", id, info.Status, info.Error)
		}
		if info.Result == nil || !info.Result.Feasible {
			t.Fatalf("fast job %s: no feasible result", id)
		}
		comms[info.Result.Comm]++
	}
	if len(comms) != 1 {
		t.Fatalf("identical instances produced different objectives: %v", comms)
	}

	st := s.Stats()
	if st.Submitted != 32 {
		t.Fatalf("submitted = %d, want 32", st.Submitted)
	}
	if st.Completed != 20 {
		t.Fatalf("completed = %d, want 20", st.Completed)
	}
	if st.Cancelled != 12 {
		t.Fatalf("cancelled = %d, want 12", st.Cancelled)
	}
	// 20 identical fast jobs share one fresh solve: 19 hits between the
	// in-flight join and the result cache.
	if st.CacheHits != 19 {
		t.Fatalf("cache hits = %d, want 19", st.CacheHits)
	}
	if st.CacheMisses < 5 {
		t.Fatalf("cache misses = %d, want >= 5", st.CacheMisses)
	}
}

func TestSolveSyncAndCache(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close(context.Background())

	info, err := s.Solve(context.Background(), fastRequest())
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusDone || info.Result == nil {
		t.Fatalf("first solve: %+v", info)
	}
	if info.CacheHit {
		t.Fatal("first solve reported a cache hit")
	}
	again, err := s.Solve(context.Background(), fastRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("identical request missed the cache")
	}
	if again.Result.Comm != info.Result.Comm {
		t.Fatalf("cached objective %d != fresh %d", again.Result.Comm, info.Result.Comm)
	}
	if s.Stats().TotalNodes != uint64(info.Result.Nodes) {
		t.Fatalf("cache hit added solver effort: %+v", s.Stats())
	}
}

func TestSolveContextCancel(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeBounded(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	info, err := s.Solve(ctx, heavyRequest(99))
	if err == nil {
		t.Fatal("expired context returned no error")
	}
	if info.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", info.Status)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled solve returned after %v", el)
	}
}

func TestPriorityOrder(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeBounded(t, s)

	// hold the single worker with a job we cancel at the end
	blocker, err := s.Submit(heavyRequest(100))
	if err != nil {
		t.Fatal(err)
	}
	for s.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}
	low := fastRequest()
	low.Priority = 1
	lowID, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	high := fastRequest()
	high.Options.L = 3 // distinct instance so the cache cannot reorder
	high.Priority = 2
	highID, err := s.Submit(high)
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(blocker)

	hi := waitFinished(t, s, highID, 30*time.Second)
	lo := waitFinished(t, s, lowID, 30*time.Second)
	if hi.Status != StatusDone || lo.Status != StatusDone {
		t.Fatalf("statuses: high=%s low=%s", hi.Status, lo.Status)
	}
	if hi.QueueWaitMS > lo.QueueWaitMS {
		t.Fatalf("high-priority job waited longer (%.1fms) than low (%.1fms)",
			hi.QueueWaitMS, lo.QueueWaitMS)
	}
}

func TestQueueLimitAndClose(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 2})

	// the worker grabs the first job; wait for the dequeue so the next
	// two land in the queue and fill it exactly
	ids := []string{}
	id, err := s.Submit(heavyRequest(200))
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, id)
	for s.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < 3; i++ {
		id, err := s.Submit(heavyRequest(200 + i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := s.Submit(heavyRequest(299)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	} else {
		var shed *ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("queue-full rejection is %T, want *ShedError", err)
		}
		if shed.Code != ShedQueueFull || shed.RetryAfter <= 0 {
			t.Fatalf("shed = {code:%q retry:%v}, want queue_full with positive retry", shed.Code, shed.RetryAfter)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Close = %v, want deadline exceeded", err)
	}
	if _, err := s.Submit(fastRequest()); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	for _, id := range ids {
		info := waitFinished(t, s, id, time.Second)
		if info.Status != StatusCancelled {
			t.Fatalf("job %s after forced close: %s", id, info.Status)
		}
	}
}

func TestUnknownJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close(context.Background())
	if _, err := s.Job("nope"); err != ErrUnknownJob {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
	if s.Cancel("nope") {
		t.Fatal("Cancel of unknown job reported true")
	}
}

func TestRequestValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close(context.Background())
	cases := []*Request{
		{},                       // empty graph
		{Graph: "graph g\ntask"}, // malformed text
		{Graph: benchmarks.Diffeq().String(), Device: DeviceSpec{Name: "xc9999"}},
		{Graph: benchmarks.Diffeq().String(), Allocation: map[string]int{"frob32": 1}},
	}
	for i, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

func TestCanonicalKeyIdentity(t *testing.T) {
	a, err := fastRequest().compile(time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fastRequest().compile(time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.key != b.key {
		t.Fatal("identical requests hash differently")
	}
	// a different latency bound is a different instance
	c := fastRequest()
	c.Options.L = 3
	ci, err := c.compile(time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ci.key == a.key {
		t.Fatal("distinct options collide")
	}
	// a renamed but otherwise identical graph is a different instance
	d := fastRequest()
	d.Graph = strings.Replace(d.Graph, "graph diffeq", "graph other", 1)
	di, err := d.compile(time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if di.key == a.key {
		t.Fatal("renamed graph collides")
	}
	// the effective time limit is part of the identity
	e, err := fastRequest().compile(2*time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.key == a.key {
		t.Fatal("different default timeouts collide")
	}
	// parallelism is NOT part of the identity: a parallel solve returns
	// the same result, so requests differing only in worker count must
	// share cache entries and singleflight groups.
	f := fastRequest()
	f.Options.Parallelism = 4
	fi, err := f.compile(time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fi.key != a.key {
		t.Fatal("parallelism changed the cache key")
	}
	if fi.opt.Parallelism != 4 {
		t.Fatalf("parallelism = %d, want 4", fi.opt.Parallelism)
	}
	// the service default fills an unset request value
	g, err := fastRequest().compile(time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.opt.Parallelism != 3 {
		t.Fatalf("default parallelism = %d, want 3", g.opt.Parallelism)
	}
	if g.key != a.key {
		t.Fatal("default parallelism changed the cache key")
	}
}

// TestCanonicalKeySearchOptions pins the consolidated search group's
// cache semantics: the legacy flat spelling and the options.search
// spelling of one configuration share a key, worker count and gate
// threshold never enter the key no matter which spelling carries them,
// and the knobs that can change the reported assignment (mode, branch,
// cuts, dive) do split cache entries.
func TestCanonicalKeySearchOptions(t *testing.T) {
	compile := func(mut func(*Request)) *instance {
		t.Helper()
		r := fastRequest()
		mut(r)
		ci, err := r.compile(time.Minute, 0)
		if err != nil {
			t.Fatal(err)
		}
		return ci
	}
	base := compile(func(*Request) {})

	// the two spellings of the same branch rule collapse to one key
	flat := compile(func(r *Request) { r.Options.Branch = core.BranchMostFrac })
	grouped := compile(func(r *Request) {
		r.Options.Search = &core.SearchOptions{Branch: core.BranchMostFrac}
	})
	if flat.key != grouped.key {
		t.Fatal("flat and search spellings of the same branch rule hash differently")
	}
	if flat.key == base.key {
		t.Fatal("branch rule absent from the cache key")
	}

	// parallelism and threshold are excluded regardless of spelling
	par := compile(func(r *Request) {
		r.Options.Search = &core.SearchOptions{Parallelism: 8, Threshold: -1}
	})
	if par.key != base.key {
		t.Fatal("search parallelism/threshold changed the cache key")
	}
	if par.opt.EffectiveSearch().Parallelism != 8 {
		t.Fatal("search parallelism lost in compilation")
	}

	// mode and the strengthening toggles are part of the identity
	for i, mut := range []func(*Request){
		func(r *Request) { r.Options.Search = &core.SearchOptions{Mode: core.SearchPortfolio} },
		func(r *Request) { r.Options.Search = &core.SearchOptions{Cuts: core.ToggleOn} },
		func(r *Request) { r.Options.Search = &core.SearchOptions{Dive: core.ToggleOff} },
	} {
		if ci := compile(mut); ci.key == base.key {
			t.Errorf("case %d: search knob absent from the cache key", i)
		}
	}

	// an out-of-range search group is rejected at compile time
	bad := fastRequest()
	bad.Options.Search = &core.SearchOptions{Parallelism: -2}
	if _, err := bad.compile(time.Minute, 0); err == nil {
		t.Fatal("invalid search options compiled")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	res := &core.Result{}
	c.add("a", res)
	c.add("b", res)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted early")
	}
	c.add("c", res) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	d := newLRUCache(-1)
	d.add("a", res)
	if _, ok := d.get("a"); ok {
		t.Fatal("disabled cache stored a result")
	}
}
