package service

// End-to-end coverage of the observability stack over the HTTP API:
// span trees with W3C trace-context propagation, the live
// /v1/debug/solves introspection surface, the black-box anomaly
// recorder (panic injection through Config.InjectFault), the stall
// watchdog, /v1/version and the queue-wait metrics.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/milp"
	"repro/internal/trace"
)

// TestBlackboxPanicE2E injects a worker panic at a known node into a
// parallel solve and retrieves the black-box dump over HTTP: the job
// fails with an error naming the node, and the dump's frozen tail
// identifies the failing node with the panic stack.
func TestBlackboxPanicE2E(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		InjectFault: func(op *core.Options) {
			op.PanicNode = 3
			op.Parallelism = 4
		},
	})

	req := heavyRequest(901)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for !info.Status.Finished() {
		if time.Now().After(deadline) {
			t.Fatalf("job still %s", info.Status)
		}
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+info.ID, &info)
	}
	if info.Status != StatusFailed {
		t.Fatalf("panicked job finished %s (want failed): %+v", info.Status, info)
	}
	if !strings.Contains(info.Error, "worker panic at node 3") {
		t.Fatalf("job error %q does not name the failing node", info.Error)
	}
	if info.BlackBox != "worker-panic" {
		t.Fatalf("job black_box = %q, want worker-panic", info.BlackBox)
	}

	var dump trace.BBDump
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+info.ID+"/blackbox", &dump); resp.StatusCode != http.StatusOK {
		t.Fatalf("blackbox endpoint: %d", resp.StatusCode)
	}
	if !dump.Flushed || dump.Reason != "worker-panic" {
		t.Fatalf("dump flushed=%v reason=%q", dump.Flushed, dump.Reason)
	}
	last := dump.Events[len(dump.Events)-1]
	if last.Kind != trace.BBPanic || last.Node != 3 {
		t.Fatalf("dump tail = %+v, want the panic at node 3", last)
	}
	if !strings.Contains(last.Msg, "injected fault") {
		t.Fatalf("panic event msg = %q", last.Msg)
	}
}

// TestDebugSolvesLiveE2E polls /v1/debug/solves during a deliberately
// slowed solve and asserts the live introspection figures — the gap
// field (always present, -1 until known), node counts and per-worker
// phases — are served mid-flight.
func TestDebugSolvesLiveE2E(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		InjectFault: func(op *core.Options) {
			op.NodeDelay = 3 * time.Millisecond
			op.Parallelism = 4
		},
	})

	_, body := postJSON(t, ts.URL+"/v1/jobs", heavyRequest(902))
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	type debugPage struct {
		Solves []SolveDebug `json:"solves"`
	}
	var live SolveDebug
	var raw []byte
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no live search snapshot within 30s")
		}
		resp, err := http.Get(ts.URL + "/v1/debug/solves")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		var page debugPage
		if err := json.Unmarshal(raw, &page); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
		found := false
		for _, d := range page.Solves {
			if d.ID == info.ID && d.Search != nil && d.Search.Running && d.Search.Nodes > 0 {
				live, found = d, true
			}
		}
		if found {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// the wire form always carries the gap (the CI smoke greps for it)
	if !bytes.Contains(raw, []byte(`"gap":`)) {
		t.Fatalf("debug page lacks a gap field: %s", raw)
	}
	if live.Graph == "" || live.RunningMS <= 0 || live.TraceID == "" {
		t.Fatalf("live entry incomplete: %+v", live)
	}
	s := live.Search
	if s.Mode == "" || s.Workers < 1 || len(s.WorkerPhases) == 0 {
		t.Fatalf("live search incomplete: %+v", s)
	}
	if s.Gap == 0 {
		t.Fatalf("gap = 0 mid-solve, want -1 (unknown) or a real gap: %+v", s)
	}

	// cancelled jobs leave the page
	http.DefaultClient.Do(mustRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil))
	waitGone := time.Now().Add(10 * time.Second)
	for {
		var page debugPage
		getJSON(t, ts.URL+"/v1/debug/solves", &page)
		still := false
		for _, d := range page.Solves {
			if d.ID == info.ID {
				still = true
			}
		}
		if !still {
			break
		}
		if time.Now().After(waitGone) {
			t.Fatal("cancelled job still listed in /v1/debug/solves")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceparentPropagationE2E submits with a W3C traceparent header
// and verifies the job joins the caller's trace: the response echoes a
// traceparent naming the job's root span, the job info carries the
// trace id, and the span tree served by /v1/jobs/{id}/spans parents the
// request span onto the caller's span.
func TestTraceparentPropagationE2E(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	hdr := "00-" + callerTrace + "-" + callerSpan + "-01"

	body, err := json.Marshal(fastRequest())
	if err != nil {
		t.Fatal(err)
	}
	req := mustRequest(t, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", hdr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	echo := resp.Header.Get("Traceparent")
	tid, sid, ok := trace.ParseTraceparent(echo)
	if !ok || tid != callerTrace {
		t.Fatalf("echoed traceparent %q does not join trace %s", echo, callerTrace)
	}
	var info JobInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.TraceID != callerTrace {
		t.Fatalf("job trace id = %q", info.TraceID)
	}

	for !info.Status.Finished() {
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+info.ID, &info)
	}
	if info.Status != StatusDone {
		t.Fatalf("job finished %s: %s", info.Status, info.Error)
	}

	var page struct {
		Spans []trace.SpanRec `json:"spans"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+info.ID+"/spans", &page)
	byName := map[string]trace.SpanRec{}
	for _, sp := range page.Spans {
		if sp.TraceID != callerTrace {
			t.Fatalf("span %s has trace id %q", sp.Name, sp.TraceID)
		}
		byName[sp.Name] = sp
	}
	for _, want := range []string{"request", "queue", "solve", "build", "root-lp", "search"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("span tree lacks %q: have %v", want, names(page.Spans))
		}
	}
	root := byName["request"]
	if root.ParentID != callerSpan {
		t.Fatalf("request span parent %q, want the caller's span %s", root.ParentID, callerSpan)
	}
	if byName["solve"].ParentID != root.SpanID || byName["queue"].ParentID != root.SpanID {
		t.Fatal("queue/solve spans not parented on the request root")
	}
	// the echoed traceparent names the request root span
	if sid != root.SpanID {
		t.Fatalf("echoed span id %q, want the request root %q", sid, root.SpanID)
	}
	if bs := byName["build"]; bs.Num["vars"] <= 0 || bs.Num["rows"] <= 0 {
		t.Fatalf("build span lacks model-shape attrs: %+v", bs)
	}
}

// TestStallWatchdogE2E slows the search far below the stall window and
// asserts the watchdog fires: the job is marked stalled, a stall event
// lands in the trace stream and the black box flushes under "stall".
func TestStallWatchdogE2E(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:     1,
		StallWindow: 60 * time.Millisecond,
		InjectFault: func(op *core.Options) { op.NodeDelay = 500 * time.Millisecond },
	})

	_, body := postJSON(t, ts.URL+"/v1/jobs", heavyRequest(903))
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !info.Stalled {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never fired; job %s: %+v", info.Status, info)
		}
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+info.ID, &info)
	}
	if info.BlackBox != "stall" {
		t.Fatalf("job black_box = %q, want stall", info.BlackBox)
	}
	var dump trace.BBDump
	getJSON(t, ts.URL+"/v1/jobs/"+info.ID+"/blackbox", &dump)
	if !dump.Flushed || dump.Reason != "stall" {
		t.Fatalf("dump flushed=%v reason=%q", dump.Flushed, dump.Reason)
	}
	tail := dump.Events[len(dump.Events)-1]
	if tail.Kind != trace.BBStall {
		t.Fatalf("dump tail = %+v, want the stall marker", tail)
	}

	// the stall also lands in the job's live event stream
	ring, err := s.Events(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	evs, _ := ring.Since(0)
	var sawStall bool
	for _, e := range evs {
		if e.Kind == trace.KindStall {
			sawStall = true
		}
	}
	if !sawStall {
		t.Fatal("no stall event in the job's trace stream")
	}
	s.Cancel(info.ID)
}

// TestVersionAndBuildInfoE2E pins /v1/version and the constant
// tpserve_build_info gauge on /v1/metrics.
func TestVersionAndBuildInfoE2E(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var bi BuildInfo
	if resp := getJSON(t, ts.URL+"/v1/version", &bi); resp.StatusCode != http.StatusOK {
		t.Fatalf("version endpoint: %d", resp.StatusCode)
	}
	if bi.Module != "repro" {
		t.Fatalf("module = %q, want repro", bi.Module)
	}
	if bi.Go == "" || bi.Version == "" {
		t.Fatalf("incomplete build info: %+v", bi)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(metrics, []byte("tpserve_build_info{")) {
		t.Fatal("metrics lack the tpserve_build_info gauge")
	}
	if !bytes.Contains(metrics, []byte(`go="`+bi.Go+`"`)) {
		t.Fatal("tpserve_build_info does not carry the toolchain label")
	}
}

// TestQueueWaitPhaseAndHistogram runs jobs through a 1-worker service
// and asserts the queue wait surfaces everywhere it should: the
// queue-wait phase in the stats snapshot, the dedicated Prometheus
// histogram, and the per-job queue_wait_ms field.
func TestQueueWaitPhaseAndHistogram(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var last JobInfo
	for i := 0; i < 3; i++ { // identical fast jobs: queue behind each other
		_, body := postJSON(t, ts.URL+"/v1/jobs", fastRequest())
		if err := json.Unmarshal(body, &last); err != nil {
			t.Fatal(err)
		}
	}
	info := waitFinished(t, s, last.ID, 30*time.Second)
	if info.QueueWaitMS < 0 {
		t.Fatalf("queue_wait_ms = %v", info.QueueWaitMS)
	}
	var sawPhase bool
	for _, ph := range s.Stats().Phases {
		if ph.Name == trace.PhaseQueueWait.String() {
			sawPhase = ph.Count >= 3
		}
	}
	if !sawPhase {
		t.Fatalf("stats phases lack queue-wait observations: %+v", s.Stats().Phases)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"tpserve_queue_wait_seconds_bucket{le=",
		"tpserve_queue_wait_seconds_count",
		`tpserve_phase_seconds_bucket{phase="queue-wait"`,
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Fatalf("metrics lack %q:\n%s", want, metrics)
		}
	}
}

// TestDeadlineFlushesBlackBox pins the deadline anomaly trigger: a
// solve that runs out of time leaves a flushed black box behind.
func TestDeadlineFlushesBlackBox(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:     1,
		InjectFault: func(op *core.Options) { op.NodeDelay = 20 * time.Millisecond },
	})
	req := heavyRequest(904)
	req.Options.TimeLimitMS = 250
	_, body := postJSON(t, ts.URL+"/v1/jobs", req)
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	info = waitFinished(t, s, info.ID, 30*time.Second)
	if info.BlackBox != "deadline" && info.BlackBox != "cancelled" {
		t.Fatalf("job black_box = %q, want a deadline flush (info %+v)", info.BlackBox, info)
	}
	var dump trace.BBDump
	getJSON(t, ts.URL+"/v1/jobs/"+info.ID+"/blackbox", &dump)
	if !dump.Flushed {
		t.Fatal("black box not flushed by the deadline")
	}
}

// TestSearchSnapshotJSONGapAlwaysPresent pins the wire contract the CI
// smoke test greps for: the gap field is emitted even while unknown.
func TestSearchSnapshotJSONGapAlwaysPresent(t *testing.T) {
	b, err := json.Marshal(milp.SearchSnapshot{Gap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"gap":-1`)) {
		t.Fatalf("snapshot JSON omits the unknown gap: %s", b)
	}
}

func mustRequest(t *testing.T, method, url string, body io.Reader) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func names(spans []trace.SpanRec) []string {
	var out []string
	for _, sp := range spans {
		out = append(out, fmt.Sprintf("%s(worker=%d)", sp.Name, sp.Worker))
	}
	return out
}
