package service

// A small LRU over completed solve results. Results are immutable
// after a solve, so entries are shared by pointer. Guarded by
// Service.mu (the cache itself is not safe for concurrent use).

import (
	"container/list"

	"repro/internal/core"
)

type lruCache struct {
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *core.Result
}

// newLRUCache returns a cache holding up to cap results; cap < 0
// disables caching entirely.
func newLRUCache(cap int) *lruCache {
	if cap < 0 {
		cap = 0
	}
	return &lruCache{
		cap:     cap,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

func (c *lruCache) len() int { return c.order.Len() }

func (c *lruCache) get(key string) (*core.Result, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *lruCache) add(key string, res *core.Result) {
	if c.cap == 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
}
