// Package service runs temporal-partitioning solves as jobs on a
// bounded worker pool. It is the concurrency layer in front of
// internal/core: design-space exploration fires many — frequently
// identical — Kaul–Vemuri instances at the optimizer, and the service
// turns the blocking, single-caller core.SolveInstance into a
// concurrent, cancellable, deduplicated and observable API.
//
// Pieces:
//
//   - a priority queue (FIFO within a priority) feeding a fixed pool
//     of worker goroutines (default GOMAXPROCS);
//   - cooperative cancellation wired through core, milp and the lp
//     pivot loops, so cancelling a job (or a client disconnecting)
//     stops the branch-and-bound search within milliseconds;
//   - an instance cache keyed by a canonical hash of (graph, library,
//     N, L, Ms, C, alpha, options) with singleflight semantics:
//     identical in-flight instances share one solve, and completed
//     results are kept in an LRU;
//   - per-job and aggregate metrics (queue wait, solve wall time,
//     branch-and-bound nodes, LP pivots, cache hits/misses).
//
// The HTTP front-end in cmd/tpserve exposes the same operations as a
// JSON API; see NewHandler.
package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/exact"
	"repro/internal/milp"
	"repro/internal/trace"
)

// Sentinel errors of Submit/Solve.
var (
	// ErrClosed reports a submission after Close.
	ErrClosed = errors.New("service: closed")
	// ErrQueueFull reports that the queue limit was reached.
	ErrQueueFull = errors.New("service: queue full")
	// ErrUnknownJob reports an unknown job ID.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrJobRunning reports an amend of a job that has not finished:
	// the base build is only stable (and its conclusions only reusable)
	// once the job is terminal.
	ErrJobRunning = errors.New("service: job still running")
)

// Config tunes a Service. The zero value picks sensible defaults.
type Config struct {
	// Workers is the number of concurrent solver goroutines; 0 means
	// GOMAXPROCS.
	Workers int
	// QueueLimit bounds the number of queued (not yet running) jobs;
	// 0 means 1024. Submissions beyond it fail with ErrQueueFull.
	QueueLimit int
	// CacheSize bounds the completed-result LRU; 0 means 256,
	// negative disables result caching (in-flight deduplication stays
	// active).
	CacheSize int
	// DefaultTimeout bounds each solve when the request carries no
	// time limit of its own; 0 means 60 s.
	DefaultTimeout time.Duration
	// History bounds how many finished job records are kept for
	// GET /jobs/{id}; 0 means 4096. The oldest finished records are
	// evicted first.
	History int
	// DefaultParallelism is the branch-and-bound worker count applied
	// to requests that carry no parallelism of their own; 0 means 1
	// (serial search). It does not affect the instance cache key.
	DefaultParallelism int
	// StallWindow arms the gap-stall watchdog: a fresh solve whose best
	// bound and incumbent both fail to move for this long gets a stall
	// trace event and a black-box flush. 0 disables the watchdog.
	StallWindow time.Duration
	// BlackBoxCap bounds each job's black-box ring (kept-last solve
	// events, flushed on anomaly); 0 means trace.DefaultBlackBoxCap.
	BlackBoxCap int
	// SpanSink, when set, receives every finished span of every job —
	// the hook cmd/tpserve uses to stream NDJSON spans to a file. Called
	// from solver goroutines; must be safe for concurrent use.
	SpanSink func(trace.SpanRec)
	// OnBlackBoxFlush, when set, is called once per job whose black box
	// flushes, with the frozen dump. Called from whatever goroutine
	// detected the anomaly; must not block.
	OnBlackBoxFlush func(jobID string, d trace.BBDump)
	// InjectFault, when set, edits the options of every fresh solve just
	// before dispatch. A test hook (panic injection, per-node delays) —
	// deliberately not reachable from the wire, and applied after the
	// cache key is computed so it never perturbs instance identity.
	InjectFault func(*core.Options)
	// Admission tunes load shedding: token-bucket rate admission and the
	// per-priority queue-budget ladder. The zero value disables rate
	// admission and applies the default budgets; see Admission.
	Admission Admission
	// MaxSweeps caps concurrently running synchronous sweeps (each runs
	// in its caller's goroutine and would otherwise pin an HTTP worker
	// for the whole grid); 0 means 4, negative disables the cap.
	MaxSweeps int
	// MaxBatch caps the number of requests one POST /v1/batch may carry;
	// 0 means 64.
	MaxBatch int
	// MaxBodyBytes caps every decoded HTTP request body; 0 means 8 MiB,
	// negative disables the cap. Oversized bodies get a typed 413.
	MaxBodyBytes int64
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 1024
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.History <= 0 {
		c.History = 4096
	}
	if c.MaxSweeps == 0 {
		c.MaxSweeps = 4
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	c.Admission.defaults()
}

// JobStatus is the lifecycle state of a job.
type JobStatus string

const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// Finished reports whether the status is terminal.
func (s JobStatus) Finished() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// job is the internal job record. All mutable fields are guarded by
// Service.mu except cancelCh/done, which are closed at most once.
type job struct {
	id       string
	req      *instance
	priority int
	seq      uint64
	// orig is the submitted request, retained so an amend can overlay
	// partial edits onto it.
	orig *Request
	// amend lineage: amendOf names the base job, gen counts amend
	// generations from the cold root, baseKey is the base job's
	// canonical key (the delta engine's warm-start anchor), and
	// deltaClass/deltaPath/primed record how the engine dispatched the
	// solve.
	amendOf    string
	gen        int
	baseKey    string
	deltaClass string
	deltaPath  string
	primed     bool
	// batch chaining: batchID names the batch the job arrived in, nextID
	// the chain successor to release when this job finalizes, and
	// deferred marks a chained job holding queue capacity but not yet in
	// the heap (it enters when its predecessor — whose build is its warm
	// anchor via baseKey — reaches a terminal state).
	batchID  string
	nextID   string
	deferred bool

	status             JobStatus
	submitted, started time.Time
	finished           time.Time
	cacheHit           bool
	result             *core.Result
	err                error
	// recording is the search-tree capture of a record-mode job, set
	// when its solve finishes and served by GET /v1/jobs/{id}/recording.
	recording  *trace.Recording
	cancelCh   chan struct{}
	cancelOnce sync.Once
	done       chan struct{}
	index      int // heap index; -1 when not queued
	// events buffers this job's solve events for live streaming
	// (GET /v1/jobs/{id}/events). Fed by the flight's fanout while the
	// solve runs; closed by finalizeLocked after the terminal job
	// event, which ends any attached SSE stream.
	events *trace.Ring
	// spans collects the job's span tree (request → queue/solve →
	// build/root-lp/search/... → per-worker children), adopting the
	// trace id of the submitter's traceparent header when one was sent.
	// rootSpan covers the whole job; queueSpan its time in the queue.
	spans    *trace.Spans
	rootSpan *trace.Span
	queueSpan *trace.Span
	// bb is the job's always-on black-box ring; live mirrors the
	// in-flight search for GET /v1/debug/solves. stalled records a
	// watchdog firing.
	bb      *trace.BlackBox
	live    *milp.SearchStatus
	stalled atomic.Bool
}

// flight is one in-progress solve shared by every job with the same
// canonical key. waiters counts the jobs attached to it; when the last
// one cancels, the underlying solve is cancelled too.
type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	res     *core.Result
	err     error
	// fanout distributes the shared solve's trace events to the event
	// ring of every job attached to this flight; joiners Add their ring
	// and see events from the join onward.
	fanout *trace.Fanout
}

// Service is a concurrent solve service. Create with New; all methods
// are safe for concurrent use.
type Service struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	queue     jobQueue
	jobs      map[string]*job
	flights   map[string]*flight
	cache     *lruCache
	seq       uint64
	running   int
	closed    bool
	doneOrder []string // finished job IDs, oldest first, for eviction
	stats     counters
	// admission state: the submission token bucket, the count of
	// deferred batch-chain jobs (they hold queue capacity while waiting
	// on a predecessor), and the in-flight synchronous sweep gauge.
	bucket        tokenBucket
	deferred      int
	sweepsRunning int
	// batches records recent batch submissions for GET /v1/batch/{id};
	// batchOrder drives FIFO eviction like doneOrder does for jobs.
	batches    map[string]*batchRecord
	batchOrder []string
	batchSeq   uint64

	// prof aggregates per-phase solver wall time across every fresh
	// solve for GET /v1/metrics. Its buckets are atomic, so it is
	// attached to concurrent solves directly; recorded jobs use a
	// private profile that is merged in afterwards so their recording
	// footer stays per-job.
	prof *trace.Profile

	// delta caches recent builds and dispatches every fresh solve down
	// the cheapest sound path (cold / warm-started / conclusion reuse)
	// given the edit against a cached base; see internal/delta.
	delta *delta.Engine

	wg sync.WaitGroup
}

// New starts a service with cfg.Workers solver goroutines.
func New(cfg Config) *Service {
	cfg.defaults()
	s := &Service{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		flights: make(map[string]*flight),
		batches: make(map[string]*batchRecord),
		cache:   newLRUCache(cfg.CacheSize),
		prof:    trace.NewProfile(),
		delta:   delta.NewEngine(delta.Config{}),
	}
	if cfg.Admission.Rate > 0 {
		s.bucket = tokenBucket{rate: cfg.Admission.Rate, burst: float64(cfg.Admission.Burst)}
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Workers returns the configured worker count.
func (s *Service) Workers() int { return s.cfg.Workers }

// Submit validates and enqueues a request, returning the job ID.
func (s *Service) Submit(req *Request) (string, error) {
	ci, err := req.compile(s.cfg.DefaultTimeout, s.cfg.DefaultParallelism)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enqueueLocked(ci, req, nil, nil)
}

// lineage carries amend parentage into enqueueLocked: the base job,
// the amend generation, the base's canonical key (the delta engine's
// warm anchor) and the base ring's total (the new ring's index
// anchor, keeping SSE event ids monotone across the amend boundary).
type lineage struct {
	of      string
	gen     int
	baseKey string
	ringAt  uint64
}

// chainLink carries batch parentage into enqueueLocked: the batch the
// job belongs to, the canonical key of the chain predecessor whose
// cached build warm-starts this solve, and whether the job must wait
// (deferred, out of the heap) until that predecessor finalizes.
// preadmitted marks a job whose admission was already charged by the
// batch's atomic admitNLocked; enqueueLocked must not admit it again,
// or each batch item would cost two tokens and the bucket could empty
// mid-batch, orphaning the items enqueued before the failure.
type chainLink struct {
	batchID     string
	baseKey     string
	defer_      bool
	preadmitted bool
}

// enqueueLocked creates and enqueues a job. Callers hold s.mu.
func (s *Service) enqueueLocked(ci *instance, orig *Request, ln *lineage, cl *chainLink) (string, error) {
	if s.closed {
		return "", ErrClosed
	}
	if cl == nil || !cl.preadmitted {
		if err := s.admitLocked(orig.Priority); err != nil {
			return "", err
		}
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%08x", s.seq),
		req:       ci,
		orig:      orig,
		priority:  orig.Priority,
		seq:       s.seq,
		status:    StatusQueued,
		submitted: time.Now(),
		cancelCh:  make(chan struct{}),
		done:      make(chan struct{}),
		index:     -1,
		events:    trace.NewRing(0),
	}
	j.spans = trace.NewSpans(orig.TraceParent)
	if s.cfg.SpanSink != nil {
		j.spans.SetSink(s.cfg.SpanSink)
	}
	j.rootSpan = j.spans.Root("request")
	j.rootSpan.SetStr("job", j.id)
	j.rootSpan.SetStr("graph", ci.inst.Graph.Name)
	j.queueSpan = j.rootSpan.Child("queue")
	j.bb = trace.NewBlackBox(s.cfg.BlackBoxCap)
	if s.cfg.OnBlackBoxFlush != nil {
		id, hook := j.id, s.cfg.OnBlackBoxFlush
		j.bb.SetOnFlush(func(d trace.BBDump) { hook(id, d) })
	}
	j.live = milp.NewSearchStatus()
	if ln != nil {
		j.amendOf, j.gen, j.baseKey = ln.of, ln.gen, ln.baseKey
		j.events = trace.NewRingAt(0, ln.ringAt)
		s.stats.amends++
	}
	if cl != nil {
		j.batchID = cl.batchID
		if cl.baseKey != "" {
			j.baseKey = cl.baseKey
		}
		j.deferred = cl.defer_
	}
	s.jobs[j.id] = j
	if j.deferred {
		// chained batch job: holds queue capacity (counted by admission)
		// but enters the heap only when its predecessor finalizes, so the
		// delta engine finds the predecessor's build cached and re-solves
		// warm instead of cold.
		s.deferred++
	} else {
		heap.Push(&s.queue, j)
		s.cond.Signal()
	}
	s.stats.submitted++
	return j.id, nil
}

// Amend overlays a partial edit onto a finished job's request and
// enqueues the merged request as a new job carrying the base's
// lineage. The solve dispatches through the delta engine against the
// base's cached build: pure bound edits (capacity, scratch, α) reuse
// its presolve and root basis, structural edits run cold. Amending a
// queued or running job fails with ErrJobRunning; the base build is
// only stable once the job is terminal. The amended job's canonical
// key derives from the merged request, so repeated identical amends
// deduplicate through the result cache and singleflight like any
// other submission.
func (s *Service) Amend(baseID string, a *AmendRequest) (string, error) {
	s.mu.Lock()
	base, ok := s.jobs[baseID]
	if !ok {
		s.mu.Unlock()
		return "", ErrUnknownJob
	}
	if !base.status.Finished() {
		st := base.status
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %s is %s", ErrJobRunning, baseID, st)
	}
	ln := &lineage{of: baseID, gen: base.gen + 1, baseKey: base.req.key, ringAt: base.events.Total()}
	orig := base.orig
	s.mu.Unlock()

	merged := a.overlay(orig)
	ci, err := merged.compile(s.cfg.DefaultTimeout, s.cfg.DefaultParallelism)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enqueueLocked(ci, merged, ln, nil)
}

// Job returns a snapshot of the job's state.
func (s *Service) Job(id string) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, ErrUnknownJob
	}
	return s.infoLocked(j), nil
}

// Cancel requests cancellation of a job. A queued job is cancelled
// immediately; a running job stops cooperatively (the solver polls the
// context in its pivot and node loops). It reports whether the job
// existed and was still cancellable.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	switch j.status {
	case StatusQueued:
		if j.index >= 0 {
			heap.Remove(&s.queue, j.index)
		}
		// (a deferred chain job has index -1 and is not in the heap; its
		// bookkeeping is released by finalizeLocked)
		s.finalizeLocked(j, nil, context.Canceled, StatusCancelled)
		s.mu.Unlock()
		return true
	case StatusRunning:
		// settle the job right here rather than from the solve's watcher
		// goroutine: under heavy CPU load the watcher may not be
		// scheduled for tens of milliseconds, and the caller-observable
		// cancellation latency must not depend on that. The watcher
		// still handles the flight bookkeeping (waiter counts, stopping
		// the shared solve when the last waiter leaves).
		s.finalizeLocked(j, nil, context.Canceled, StatusCancelled)
		s.mu.Unlock()
		j.cancelOnce.Do(func() { close(j.cancelCh) })
		return true
	default:
		s.mu.Unlock()
		return false
	}
}

// Solve submits the request and waits for it under ctx. When ctx is
// cancelled or expires, the job is cancelled (stopping the underlying
// branch and bound) and the job's final state is returned together
// with the context's error.
func (s *Service) Solve(ctx context.Context, req *Request) (JobInfo, error) {
	id, err := s.Submit(req)
	if err != nil {
		return JobInfo{}, err
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	select {
	case <-j.done:
		return s.Job(id)
	case <-ctx.Done():
		s.Cancel(id)
		// the cancellation is cooperative: wait for the job to settle
		// so the caller observes its terminal state
		<-j.done
		info, _ := s.Job(id)
		return info, ctx.Err()
	}
}

// Stats returns a snapshot of the aggregate metrics, including the
// per-phase solver wall-time histograms accumulated over fresh solves.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats.snapshot(s.cfg.Workers, s.queue.Len(), s.running, len(s.flights), s.cache.len())
	st.Deferred = s.deferred
	st.SweepsRunning = s.sweepsRunning
	st.Phases = s.prof.Snapshot()
	st.Delta = s.delta.Metrics()
	return st
}

// Close stops accepting jobs and drains the pool: queued jobs still
// run. If ctx expires first, every remaining job is cancelled and
// Close returns ctx.Err() once the workers exit.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-drained
		return ctx.Err()
	}
}

// cancelAll cancels every queued, deferred and running job. Finalizing
// a chained job releases its successor into the heap, so the drain
// loops until a full pass makes no progress — successors released by a
// cancelled predecessor are cancelled too instead of starting to solve
// during shutdown.
func (s *Service) cancelAll() {
	s.mu.Lock()
	var running []*job
	for {
		acted := false
		for s.queue.Len() > 0 {
			j := heap.Pop(&s.queue).(*job)
			s.finalizeLocked(j, nil, context.Canceled, StatusCancelled)
			acted = true
		}
		for _, j := range s.jobs {
			switch {
			case j.status == StatusRunning:
				s.finalizeLocked(j, nil, context.Canceled, StatusCancelled)
				running = append(running, j)
				acted = true
			case j.status == StatusQueued && j.deferred:
				s.finalizeLocked(j, nil, context.Canceled, StatusCancelled)
				acted = true
			}
		}
		if !acted {
			break
		}
	}
	s.mu.Unlock()
	for _, j := range running {
		j.cancelOnce.Do(func() { close(j.cancelCh) })
	}
}

// worker pulls jobs until the service is closed and the queue drained.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		j.status = StatusRunning
		j.started = time.Now()
		s.running++
		s.mu.Unlock()
		// queue wait ends here: close the queue span and attribute the
		// latency to the service-level queue-wait phase histogram
		j.queueSpan.End()
		if wait := j.started.Sub(j.submitted); wait > 0 {
			s.prof.Observe(trace.PhaseQueueWait, wait.Nanoseconds())
		}
		s.run(j)
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// run executes one job: result cache, then singleflight join, then a
// fresh solve as the flight leader. Record-mode jobs skip the cache and
// the flight map entirely — a shared or cached result has no recording
// — and run their own fresh solve.
func (s *Service) run(j *job) {
	if j.req.record {
		s.runRecorded(j)
		return
	}
	key := j.req.key
	s.mu.Lock()
	if res, ok := s.cache.get(key); ok {
		j.cacheHit = true
		s.stats.cacheHits++
		s.finalizeLocked(j, res, nil, StatusDone)
		s.mu.Unlock()
		return
	}
	if f, ok := s.flights[key]; ok {
		// an identical instance is already solving: share its outcome
		// (and its event stream, from this point onward)
		f.waiters++
		j.cacheHit = true
		s.stats.cacheHits++
		f.fanout.Add(j.events)
		s.mu.Unlock()
		select {
		case <-f.done:
			s.mu.Lock()
			switch {
			case f.err != nil:
				s.finalizeLocked(j, nil, f.err, StatusFailed)
			case f.res.Cancelled:
				s.finalizeLocked(j, f.res, context.Canceled, StatusCancelled)
			default:
				s.finalizeLocked(j, f.res, nil, StatusDone)
			}
			s.mu.Unlock()
		case <-j.cancelCh:
			s.mu.Lock()
			f.waiters--
			last := f.waiters == 0
			s.finalizeLocked(j, nil, context.Canceled, StatusCancelled)
			s.mu.Unlock()
			if last {
				f.cancel()
			}
		}
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1,
		fanout: trace.NewFanout(j.events)}
	s.flights[key] = f
	s.stats.cacheMisses++
	s.mu.Unlock()

	// Mirror the job's cancellation onto the shared solve: the flight
	// is cancelled only when its last attached job cancels, so one
	// impatient caller cannot kill a solve other callers still want.
	watchStop := make(chan struct{})
	go func() {
		select {
		case <-j.cancelCh:
			s.mu.Lock()
			f.waiters--
			last := f.waiters == 0
			// settle the cancelled job immediately; the solve keeps
			// running for the remaining waiters, if any
			s.finalizeLocked(j, nil, context.Canceled, StatusCancelled)
			s.mu.Unlock()
			if last {
				cancel()
			}
		case <-watchStop:
		}
	}()

	op := j.req.opt
	op.Trace = trace.New(f.fanout)
	op.Profile = s.prof // aggregate phase attribution for /v1/metrics
	endSolve := s.beginSolve(j, &op)
	res, dinfo, err := s.solveLabeled(ctx, j, op)
	endSolve(res, dinfo, err)
	close(watchStop)

	s.mu.Lock()
	j.deltaClass, j.deltaPath, j.primed = dinfo.Class, dinfo.Path, dinfo.Primed
	f.res, f.err = res, err
	delete(s.flights, key)
	if res != nil {
		// solver-effort metrics count actual work, so cache hits and
		// joiners never double-count
		s.stats.nodes += uint64(res.Nodes)
		s.stats.pivots += uint64(res.LPIterations)
	}
	if err == nil && res != nil && !res.Cancelled {
		s.cache.add(key, res)
	}
	if j.status == StatusRunning { // not already settled by the watcher
		switch {
		case err != nil:
			s.finalizeLocked(j, nil, err, StatusFailed)
		case res.Cancelled:
			s.finalizeLocked(j, res, context.Canceled, StatusCancelled)
		default:
			s.finalizeLocked(j, res, nil, StatusDone)
		}
	}
	s.mu.Unlock()
	cancel()
	close(f.done)
}

// runRecorded executes a record-mode job: always a fresh solve with a
// flight recorder and a private phase profile attached. The result is
// still published to the result cache (it is exactly what an unrecorded
// request would compute), but no flight is registered, so concurrent
// identical jobs neither join nor reuse this solve.
func (s *Service) runRecorded(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchStop := make(chan struct{})
	go func() {
		select {
		case <-j.cancelCh:
			s.mu.Lock()
			s.finalizeLocked(j, nil, context.Canceled, StatusCancelled)
			s.mu.Unlock()
			cancel()
		case <-watchStop:
		}
	}()

	rec := trace.NewRecorder(0)
	rec.SetLabel(j.req.inst.Graph.Name)
	prof := trace.NewProfile()
	op := j.req.opt
	op.Trace = trace.New(j.events)
	op.Record = rec
	op.Profile = prof
	endSolve := s.beginSolve(j, &op)
	s.mu.Lock()
	s.stats.cacheMisses++
	s.mu.Unlock()
	res, dinfo, err := s.solveLabeled(ctx, j, op)
	endSolve(res, dinfo, err)
	close(watchStop)

	if j.amendOf != "" {
		// stamp the amend lineage before snapshotting, so the recording
		// names its base job and the delta path the engine took
		rec.SetAmend(&trace.AmendRec{Of: j.amendOf, Generation: j.gen,
			Class: dinfo.Class, Path: dinfo.Path})
	}
	s.mu.Lock()
	j.deltaClass, j.deltaPath, j.primed = dinfo.Class, dinfo.Path, dinfo.Primed
	s.prof.Merge(prof) // fold the per-job phases into /v1/metrics
	j.recording = rec.Snapshot()
	if res != nil {
		s.stats.nodes += uint64(res.Nodes)
		s.stats.pivots += uint64(res.LPIterations)
	}
	if err == nil && res != nil && !res.Cancelled {
		s.cache.add(j.req.key, res)
	}
	if j.status == StatusRunning {
		switch {
		case err != nil:
			s.finalizeLocked(j, nil, err, StatusFailed)
		case res.Cancelled:
			s.finalizeLocked(j, res, context.Canceled, StatusCancelled)
		default:
			s.finalizeLocked(j, res, nil, StatusDone)
		}
	}
	s.mu.Unlock()
}

// solveLabeled runs the solve through the delta engine — which caches
// the build under the job's canonical key and warm-starts it from the
// base job's build on amends — with pprof labels identifying the job
// and graph, so CPU profiles of the service slice by job.
func (s *Service) solveLabeled(ctx context.Context, j *job, op core.Options) (res *core.Result, info delta.Info, err error) {
	labels := pprof.Labels("tp_job", j.id, "tp_graph", j.req.inst.Graph.Name)
	pprof.Do(ctx, labels, func(ctx context.Context) {
		res, info, err = s.delta.Solve(ctx, j.req.key, j.baseKey, j.req.inst, op)
	})
	return res, info, err
}

// Recording returns the search-tree capture of a finished record-mode
// job. ErrUnknownJob for unknown ids; a nil recording means the job was
// not submitted with record or has not finished its solve yet.
func (s *Service) Recording(id string) (*trace.Recording, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j.recording, nil
}

// Certificate returns the exact-arithmetic certificate of a finished
// certify-mode job. ErrUnknownJob for unknown ids; a nil certificate
// means the job was not submitted with options.certify, has not
// finished, or ended in a state with nothing certifiable. Certify is
// part of the canonical cache key, so a cached result of a certified
// solve carries its certificate too.
func (s *Service) Certificate(id string) (*exact.Certificate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.result == nil {
		return nil, nil
	}
	return j.result.Certificate, nil
}

// finalizeLocked moves a job to a terminal status and updates the
// aggregate metrics. Callers hold s.mu.
func (s *Service) finalizeLocked(j *job, res *core.Result, err error, status JobStatus) {
	if j.status.Finished() {
		return
	}
	j.status = status
	j.result = res
	j.err = err
	j.finished = time.Now()
	if j.deferred {
		// cancelled before its chain predecessor finished: release the
		// queue capacity it was holding
		j.deferred = false
		s.deferred--
	}
	if j.nextID != "" {
		// release the chain successor: its warm anchor (this job's build)
		// is as cached as it will ever be. Released even when this job
		// failed or was cancelled — the successor then simply misses the
		// delta cache and solves cold.
		if nj, ok := s.jobs[j.nextID]; ok && nj.deferred && nj.status == StatusQueued {
			nj.deferred = false
			s.deferred--
			heap.Push(&s.queue, nj)
			s.cond.Signal()
		}
	}
	switch status {
	case StatusDone:
		s.stats.completed++
	case StatusFailed:
		s.stats.failed++
	case StatusCancelled:
		s.stats.cancelled++
	}
	wait := j.finished.Sub(j.submitted)
	if !j.started.IsZero() {
		wait = j.started.Sub(j.submitted)
		solve := j.finished.Sub(j.started)
		s.stats.solveTime += solve
		if solve > s.stats.maxSolve {
			s.stats.maxSolve = solve
		}
	}
	s.stats.queueWait += wait
	if wait > s.stats.maxQueueWait {
		s.stats.maxQueueWait = wait
	}
	s.doneOrder = append(s.doneOrder, j.id)
	if evict := len(s.doneOrder) - s.cfg.History; evict > 0 {
		// copy-down instead of re-slicing ([1:] would keep the evicted
		// IDs reachable through the backing array forever)
		for _, id := range s.doneOrder[:evict] {
			delete(s.jobs, id)
		}
		n := copy(s.doneOrder, s.doneOrder[evict:])
		clear(s.doneOrder[n:])
		s.doneOrder = s.doneOrder[:n]
	}
	// terminal job event, then close the ring so attached SSE streams
	// drain it and end. Emitted directly (not through the flight's
	// tracer): cache hits and cancellations settle without any flight.
	e := trace.Event{
		Kind:   trace.KindJob,
		TMS:    durMS(j.finished.Sub(j.submitted)),
		Status: string(status),
	}
	if err != nil {
		e.Msg = err.Error()
	}
	if res != nil {
		e.Nodes = int64(res.Nodes)
		e.Pivots = int64(res.LPIterations)
		if res.Solution != nil {
			e.HasIncumbent = true
			e.Incumbent = float64(res.Solution.Comm)
		}
	}
	j.events.Emit(e)
	j.events.Close()
	// close out the span tree (End is idempotent, so a queue span
	// already ended at worker pickup is unaffected)
	j.queueSpan.End()
	j.rootSpan.SetStr("status", string(status))
	j.rootSpan.End()
	close(j.done)
}

// Events returns the live event ring of a job: the trace of its solve
// (model shape, root bound, node progress, incumbents, terminal
// status) plus the final job transition. The ring is closed once the
// job reaches a terminal state. Streaming readers combine Ring.Wait
// with Ring.Since; see the SSE handler in http.go.
func (s *Service) Events(id string) (*trace.Ring, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j.events, nil
}

// infoLocked snapshots a job. Callers hold s.mu.
func (s *Service) infoLocked(j *job) JobInfo {
	info := JobInfo{
		ID:          j.id,
		Status:      j.status,
		Priority:    j.priority,
		CacheHit:    j.cacheHit,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		info.QueueWaitMS = durMS(j.started.Sub(j.submitted))
	}
	if !j.finished.IsZero() {
		if !j.started.IsZero() {
			info.SolveMS = durMS(j.finished.Sub(j.started))
		} else {
			info.QueueWaitMS = durMS(j.finished.Sub(j.submitted))
		}
	}
	if j.result != nil {
		info.Result = outcomeOf(j.result)
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	if j.amendOf != "" {
		info.Amend = &AmendInfo{
			Of:         j.amendOf,
			Generation: j.gen,
			Class:      j.deltaClass,
			Path:       j.deltaPath,
			Primed:     j.primed,
		}
	}
	if j.batchID != "" {
		info.Batch = j.batchID
		if j.amendOf == "" && j.deltaPath != "" {
			info.Delta = &DeltaDispatch{
				Class:  j.deltaClass,
				Path:   j.deltaPath,
				Primed: j.primed,
			}
		}
	}
	info.TraceID = j.spans.TraceID()
	info.Stalled = j.stalled.Load()
	if reason, ok := j.bb.Flushed(); ok {
		info.BlackBox = reason
	}
	return info
}

// jobQueue is a priority queue: higher priority first, FIFO within a
// priority (by submission sequence number).
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(a, b int) bool {
	if q[a].priority != q[b].priority {
		return q[a].priority > q[b].priority
	}
	return q[a].seq < q[b].seq
}
func (q jobQueue) Swap(a, b int) {
	q[a], q[b] = q[b], q[a]
	q[a].index = a
	q[b].index = b
}
func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.index = len(*q)
	*q = append(*q, j)
}
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*q = old[:n-1]
	return j
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
