package service

// Metrics: internal counters guarded by Service.mu and the exported
// JSON-friendly snapshots served by GET /metrics.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/trace"
)

// counters accumulates service-lifetime metrics. Guarded by Service.mu.
type counters struct {
	submitted uint64
	completed uint64
	failed    uint64
	cancelled uint64

	cacheHits   uint64
	cacheMisses uint64

	amends      uint64
	sweeps      uint64
	sweepPoints uint64
	batches     uint64

	shedQueue uint64
	shedRate  uint64
	shedSweep uint64

	queueWait    time.Duration
	maxQueueWait time.Duration
	solveTime    time.Duration
	maxSolve     time.Duration

	nodes  uint64
	pivots uint64
}

// Stats is a point-in-time snapshot of the service metrics, shaped for
// JSON serving.
type Stats struct {
	// Workers is the configured solver-goroutine count.
	Workers int `json:"workers"`
	// Queued and Running are gauges of the current load.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// InFlight counts distinct instances currently solving (after
	// deduplication); CachedResults the completed-result LRU size.
	InFlight      int `json:"in_flight"`
	CachedResults int `json:"cached_results"`

	// Submitted/Completed/Failed/Cancelled are job-lifetime counters.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`

	// CacheHits counts jobs served from the result cache or attached
	// to an in-flight identical solve; CacheMisses counts fresh solves.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`

	// Amends counts jobs created via POST /v1/jobs/{id}/amend; Sweeps
	// and SweepPoints count POST /v1/sweep calls and the grid points
	// they solved; Batches counts POST /v1/batch calls.
	Amends      uint64 `json:"amends"`
	Sweeps      uint64 `json:"sweeps"`
	SweepPoints uint64 `json:"sweep_points"`
	Batches     uint64 `json:"batches"`

	// Deferred is a gauge of batch-chain jobs holding queue capacity
	// while waiting for their warm-start predecessor; SweepsRunning a
	// gauge of synchronous sweeps currently pinned to HTTP workers.
	Deferred      int `json:"deferred"`
	SweepsRunning int `json:"sweeps_running"`

	// Shed* count rejected submissions by admission mechanism: queue
	// budget exhausted, token bucket empty, sweep cap reached. Every
	// shed became an HTTP 429 with a Retry-After header.
	ShedQueueFull   uint64 `json:"shed_queue_full"`
	ShedRateLimited uint64 `json:"shed_rate_limited"`
	ShedSweepLimit  uint64 `json:"shed_sweep_limit"`

	// Delta is the delta engine's dispatch accounting: how many fresh
	// solves ran, how many were warm-started from a cached base, and
	// how many were answered by monotone conclusion reuse without any
	// search.
	Delta delta.Metrics `json:"delta"`

	// TotalNodes and TotalLPIterations accumulate solver effort
	// (branch-and-bound nodes, simplex pivots) over fresh solves only,
	// so a stalled counter demonstrates that cancellation really
	// stopped the search.
	TotalNodes        uint64 `json:"total_nodes"`
	TotalLPIterations uint64 `json:"total_lp_iterations"`

	// Latency aggregates, in milliseconds.
	TotalQueueWaitMS float64 `json:"total_queue_wait_ms"`
	MaxQueueWaitMS   float64 `json:"max_queue_wait_ms"`
	TotalSolveMS     float64 `json:"total_solve_ms"`
	MaxSolveMS       float64 `json:"max_solve_ms"`

	// Phases are the per-phase solver wall-time histograms (node-lp,
	// probe, pricing, ratio-test, ...) aggregated over every fresh
	// solve; see trace.Phase for the taxonomy. Served as native
	// histograms on /v1/metrics.
	Phases []trace.PhaseStat `json:"phases,omitempty"`
}

func (c *counters) snapshot(workers, queued, running, inFlight, cached int) Stats {
	return Stats{
		Workers:           workers,
		Queued:            queued,
		Running:           running,
		InFlight:          inFlight,
		CachedResults:     cached,
		Submitted:         c.submitted,
		Completed:         c.completed,
		Failed:            c.failed,
		Cancelled:         c.cancelled,
		CacheHits:         c.cacheHits,
		CacheMisses:       c.cacheMisses,
		Amends:            c.amends,
		Sweeps:            c.sweeps,
		SweepPoints:       c.sweepPoints,
		Batches:           c.batches,
		ShedQueueFull:     c.shedQueue,
		ShedRateLimited:   c.shedRate,
		ShedSweepLimit:    c.shedSweep,
		TotalNodes:        c.nodes,
		TotalLPIterations: c.pivots,
		TotalQueueWaitMS:  durMS(c.queueWait),
		MaxQueueWaitMS:    durMS(c.maxQueueWait),
		TotalSolveMS:      durMS(c.solveTime),
		MaxSolveMS:        durMS(c.maxSolve),
	}
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), served by GET /v1/metrics. Only
// fmt — the format is simple enough that a client dependency would be
// all cost.
func (st Stats) WritePrometheus(w io.Writer) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	bi := Version()
	fmt.Fprintf(w, "# HELP tpserve_build_info Build identity of the running binary (constant 1).\n# TYPE tpserve_build_info gauge\n")
	fmt.Fprintf(w, "tpserve_build_info{version=%q,revision=%q,go=%q} 1\n", bi.Version, bi.Revision, bi.Go)
	gauge("tpserve_workers", "Configured solver goroutines.", float64(st.Workers))
	gauge("tpserve_jobs_queued", "Jobs waiting in the queue.", float64(st.Queued))
	gauge("tpserve_jobs_running", "Jobs currently solving.", float64(st.Running))
	gauge("tpserve_flights_in_progress", "Distinct instances solving after deduplication.", float64(st.InFlight))
	gauge("tpserve_cached_results", "Completed results held in the LRU.", float64(st.CachedResults))
	counter("tpserve_jobs_submitted_total", "Jobs submitted.", float64(st.Submitted))
	counter("tpserve_jobs_completed_total", "Jobs finished successfully.", float64(st.Completed))
	counter("tpserve_jobs_failed_total", "Jobs finished with an error.", float64(st.Failed))
	counter("tpserve_jobs_cancelled_total", "Jobs cancelled.", float64(st.Cancelled))
	counter("tpserve_cache_hits_total", "Jobs served from the cache or an in-flight solve.", float64(st.CacheHits))
	counter("tpserve_cache_misses_total", "Fresh solves.", float64(st.CacheMisses))
	counter("tpserve_amends_total", "Jobs created by amending a finished job.", float64(st.Amends))
	counter("tpserve_sweeps_total", "Design-space sweep requests.", float64(st.Sweeps))
	counter("tpserve_sweep_points_total", "Grid points solved by sweeps.", float64(st.SweepPoints))
	counter("tpserve_batches_total", "Batch submissions.", float64(st.Batches))
	gauge("tpserve_jobs_deferred", "Batch-chain jobs holding queue capacity awaiting a warm-start predecessor.", float64(st.Deferred))
	gauge("tpserve_sweeps_running", "Synchronous sweeps currently executing.", float64(st.SweepsRunning))
	counter("tpserve_shed_queue_full_total", "Submissions shed by the per-priority queue budget.", float64(st.ShedQueueFull))
	counter("tpserve_shed_rate_limited_total", "Submissions shed by the admission token bucket.", float64(st.ShedRateLimited))
	counter("tpserve_shed_sweep_limit_total", "Sweeps shed by the in-flight sweep cap.", float64(st.ShedSweepLimit))
	counter("tpserve_delta_warm_total", "Solves warm-started from a cached root basis.", float64(st.Delta.Warm))
	counter("tpserve_delta_reuse_total", "Solves answered by monotone conclusion reuse.", float64(st.Delta.Reuse))
	counter("tpserve_delta_structural_total", "Amends classified structural (cold re-solve).", float64(st.Delta.Structural))
	counter("tpserve_bb_nodes_total", "Branch-and-bound nodes explored by fresh solves.", float64(st.TotalNodes))
	counter("tpserve_lp_pivots_total", "Simplex pivots performed by fresh solves.", float64(st.TotalLPIterations))
	counter("tpserve_queue_wait_seconds_total", "Cumulative queue wait.", st.TotalQueueWaitMS/1000)
	gauge("tpserve_queue_wait_seconds_max", "Largest observed queue wait.", st.MaxQueueWaitMS/1000)
	counter("tpserve_solve_seconds_total", "Cumulative solve wall time.", st.TotalSolveMS/1000)
	gauge("tpserve_solve_seconds_max", "Largest observed solve wall time.", st.MaxSolveMS/1000)
	for _, ph := range st.Phases {
		if ph.Name == "queue-wait" {
			// the queue-wait phase also gets a dedicated histogram under
			// its own metric name, so dashboards need not know the
			// phase-label taxonomy to graph submission latency
			writeHist(w, "tpserve_queue_wait_seconds", "Submit-to-pickup queue wait per job.", ph)
		}
	}
	if len(st.Phases) > 0 {
		st.writePhaseHistograms(w)
	}
}

// writeHist renders one trace.PhaseStat as an unlabeled Prometheus
// histogram. The trace.Hist buckets are powers of two in nanoseconds;
// bucket pow becomes a cumulative le bound of 2^pow ns in seconds.
func writeHist(w io.Writer, name, help string, ph trace.PhaseStat) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for _, b := range ph.Buckets {
		cum += b.N
		le := float64(int64(1)<<uint(b.Pow)) / 1e9
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(le), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, ph.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(ph.SumNS)/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, ph.Count)
}

// writePhaseHistograms renders the per-phase wall-time attribution as
// one Prometheus histogram per phase, labeled {phase="..."}. The
// trace.Hist buckets are powers of two in nanoseconds; each bucket pow
// becomes a cumulative le bound of 2^pow ns expressed in seconds.
func (st Stats) writePhaseHistograms(w io.Writer) {
	const name = "tpserve_phase_seconds"
	fmt.Fprintf(w, "# HELP %s Solver wall time by phase (see trace.Phase taxonomy).\n# TYPE %s histogram\n", name, name)
	for _, ph := range st.Phases {
		cum := int64(0)
		for _, b := range ph.Buckets {
			cum += b.N
			// bucket b holds durations in [2^(pow-1), 2^pow) ns
			le := float64(int64(1)<<uint(b.Pow)) / 1e9
			fmt.Fprintf(w, "%s_bucket{phase=%q,le=%q} %d\n", name, ph.Name, trimFloat(le), cum)
		}
		fmt.Fprintf(w, "%s_bucket{phase=%q,le=\"+Inf\"} %d\n", name, ph.Name, ph.Count)
		fmt.Fprintf(w, "%s_sum{phase=%q} %g\n", name, ph.Name, float64(ph.SumNS)/1e9)
		fmt.Fprintf(w, "%s_count{phase=%q} %d\n", name, ph.Name, ph.Count)
	}
}

// trimFloat formats a le bound compactly (Prometheus compares le values
// textually across scrapes, so the encoding must be stable).
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// JobInfo is the JSON view of a job's state.
type JobInfo struct {
	ID       string    `json:"id"`
	Status   JobStatus `json:"status"`
	Priority int       `json:"priority,omitempty"`
	// CacheHit reports that the job was served from the result cache
	// or deduplicated onto an identical in-flight solve.
	CacheHit    bool      `json:"cache_hit,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	QueueWaitMS float64   `json:"queue_wait_ms"`
	SolveMS     float64   `json:"solve_ms"`
	Result      *Outcome  `json:"result,omitempty"`
	Error       string    `json:"error,omitempty"`
	// Amend is the amend lineage of a job created through
	// POST /v1/jobs/{id}/amend; nil for directly submitted jobs.
	Amend *AmendInfo `json:"amend,omitempty"`
	// Batch is the batch ID for jobs submitted through POST /v1/batch.
	Batch string `json:"batch,omitempty"`
	// Delta is the delta engine's dispatch for batch warm-chain jobs:
	// which path (cold/warm/reuse) the solve took against its chain
	// predecessor's cached build. Amended jobs report the same through
	// Amend instead.
	Delta *DeltaDispatch `json:"delta,omitempty"`
	// TraceID names the job's span tree; the trace id of the caller's
	// traceparent header when the submission carried one.
	TraceID string `json:"trace_id,omitempty"`
	// Stalled reports that the gap-stall watchdog fired during the
	// job's solve.
	Stalled bool `json:"stalled,omitempty"`
	// BlackBox is the flush reason when the job's black-box recorder
	// froze on an anomaly (worker-panic, deadline, cancelled,
	// certify-failed, stall); empty for a healthy job. The capture is
	// at GET /v1/jobs/{id}/blackbox.
	BlackBox string `json:"black_box,omitempty"`
}

// AmendInfo is the JSON view of a job's amend lineage: the base job,
// the generation (1 for the first amend of a cold job) and the delta
// engine's dispatch — the edit classification against the base build,
// the re-solve path (cold/warm/reuse) and whether the base's solution
// re-verified and primed the search.
type AmendInfo struct {
	Of         string `json:"of"`
	Generation int    `json:"generation"`
	Class      string `json:"class,omitempty"`
	Path       string `json:"path,omitempty"`
	Primed     bool   `json:"primed,omitempty"`
}

// DeltaDispatch is the JSON view of a delta-engine dispatch for a
// batch warm-chain job: the edit classification against the chain
// predecessor's build, the path taken (cold/warm/reuse) and whether
// the predecessor's solution re-verified and primed the search.
type DeltaDispatch struct {
	Class  string `json:"class,omitempty"`
	Path   string `json:"path,omitempty"`
	Primed bool   `json:"primed,omitempty"`
}

// Outcome is the JSON view of a core.Result.
type Outcome struct {
	Feasible  bool `json:"feasible"`
	Optimal   bool `json:"optimal"`
	Cancelled bool `json:"cancelled,omitempty"`
	// Comm is the optimized objective: total inter-segment data units.
	Comm int `json:"comm,omitempty"`
	// N is the number of partitions made available to the solution.
	N int `json:"n,omitempty"`
	// TaskPartition[t] is the 1-based segment of task t; OpStep[i] and
	// OpUnit[i] are the control step and bound FU of operation i.
	TaskPartition []int `json:"task_partition,omitempty"`
	OpStep        []int `json:"op_step,omitempty"`
	OpUnit        []int `json:"op_unit,omitempty"`
	// Vars and Rows are the generated model size (the paper's
	// Var/Const columns); Nodes and LPIterations the solver effort.
	Vars         int     `json:"vars"`
	Rows         int     `json:"rows"`
	Nodes        int     `json:"nodes"`
	LPIterations int     `json:"lp_iterations"`
	RuntimeMS    float64 `json:"runtime_ms"`
}

func outcomeOf(res *core.Result) *Outcome {
	o := &Outcome{
		Feasible:     res.Feasible,
		Optimal:      res.Optimal,
		Cancelled:    res.Cancelled,
		Vars:         res.Stats.Vars,
		Rows:         res.Stats.Rows,
		Nodes:        res.Nodes,
		LPIterations: res.LPIterations,
		RuntimeMS:    durMS(res.Runtime),
	}
	if res.Solution != nil {
		o.Comm = res.Solution.Comm
		o.N = res.Solution.N
		o.TaskPartition = res.Solution.TaskPartition
		o.OpStep = res.Solution.OpStep
		o.OpUnit = res.Solution.OpUnit
	}
	return o
}
