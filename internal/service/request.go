package service

// The JSON-facing request model: a behavioral specification in the
// graph text format, an FU exploration set, a target device and solver
// options, compiled into a core.Instance plus a canonical cache key.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
)

// Request is one solve submitted to the service.
type Request struct {
	// Graph is the behavioral specification in the text format of
	// internal/graph (the same format cmd/tpgen emits and cmd/tpsyn
	// reads). The graph name participates in the instance identity:
	// identically named identical graphs deduplicate, renamed copies
	// do not.
	Graph string `json:"graph"`
	// Allocation maps FU type names of the default component library
	// (add16, mul16, sub16, ...) to instance counts — the exploration
	// set F. Empty means the paper's default 2 adders + 2 multipliers
	// + 1 subtracter.
	Allocation map[string]int `json:"allocation,omitempty"`
	// Device selects the target device; the zero value is the XC4010.
	Device DeviceSpec `json:"device,omitempty"`
	// Options tune the formulation and the solver.
	Options SolveOptions `json:"options,omitempty"`
	// Priority orders the queue: higher runs sooner; equal priorities
	// run FIFO.
	Priority int `json:"priority,omitempty"`
	// TraceParent is the W3C traceparent header of the submitting HTTP
	// request, when one was sent: the job's span tree adopts its trace
	// id so tpserve spans join the caller's distributed trace. Set by
	// the HTTP handlers, never decoded from the JSON body.
	TraceParent string `json:"-"`
}

// DeviceSpec names a built-in device and/or overrides its parameters.
// In JSON it may be either a plain string ("xc4010") or an object.
type DeviceSpec struct {
	// Name is "xc4010" (default) or "xc4025".
	Name string `json:"name,omitempty"`
	// CapacityFG overrides the device capacity C when positive.
	CapacityFG int `json:"capacity_fg,omitempty"`
	// Alpha overrides the logic-optimization factor when positive.
	Alpha float64 `json:"alpha,omitempty"`
	// ScratchMem overrides the scratch memory size Ms when positive.
	ScratchMem int `json:"scratch_mem,omitempty"`
}

// UnmarshalJSON accepts both "xc4010" and {"name": "xc4010", ...}.
func (d *DeviceSpec) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		return json.Unmarshal(b, &d.Name)
	}
	type raw DeviceSpec
	return json.Unmarshal(b, (*raw)(d))
}

func (d DeviceSpec) resolve() (library.Device, error) {
	var dev library.Device
	switch strings.ToLower(d.Name) {
	case "", "xc4010":
		dev = library.XC4010()
	case "xc4025":
		dev = library.XC4025()
	default:
		return dev, fmt.Errorf("service: unknown device %q (want xc4010 or xc4025)", d.Name)
	}
	if d.CapacityFG > 0 {
		dev.CapacityFG = d.CapacityFG
	}
	if d.Alpha > 0 {
		dev.Alpha = d.Alpha
	}
	if d.ScratchMem > 0 {
		dev.ScratchMem = d.ScratchMem
	}
	return dev, dev.Validate()
}

// SolveOptions is the JSON view of core.Options: the canonical option
// struct is embedded verbatim — its JSON tags define the wire names
// (n, l, linearization, tightened, ...) — plus the service-level
// conveniences that have no core field. The service historically
// defaults to the tightened model, so absent both "tightened" and
// "base" the cuts are on; "base": true turns them off; an explicit
// "tightened": true always wins.
type SolveOptions struct {
	core.Options

	// Fortet selects Fortet's linearization instead of Glover's; a
	// legacy shorthand for "linearization": "fortet".
	Fortet bool `json:"fortet,omitempty"`
	// Base disables the Section-6 tightening cuts (the untightened
	// Table-1 model).
	Base bool `json:"base,omitempty"`
	// TimeLimitMS bounds the solve wall-clock time in milliseconds; 0
	// applies the service's default timeout. This is the wire form of
	// core.Options.TimeLimit, which never crosses the API as
	// nanoseconds.
	TimeLimitMS int64 `json:"time_limit_ms,omitempty"`
	// Record attaches a search-tree flight recorder to the solve. A
	// recorded job always runs fresh — it bypasses the result cache and
	// singleflight deduplication, since a shared or cached result has no
	// recording of its own — and the capture is downloadable from
	// GET /v1/jobs/{id}/recording once the job finishes. The produced
	// result is still cached for later unrecorded requests.
	Record bool `json:"record,omitempty"`
}

// AmendRequest is a partial edit of a finished job's request, applied
// as an overlay: nil fields inherit the base job's value. The merged
// request becomes a new job whose solve is dispatched through the
// delta engine against the base job's cached build, so small edits
// (capacity, scratch memory, α, bounds) re-solve warm instead of cold.
type AmendRequest struct {
	// Graph replaces the behavioral specification (a structural edit:
	// the re-solve runs cold).
	Graph *string `json:"graph,omitempty"`
	// Allocation replaces the exploration set wholesale when non-nil.
	Allocation map[string]int `json:"allocation,omitempty"`
	// Device overlays the base device field-wise: only the fields set
	// here change, so {"device":{"capacity_fg":300}} edits C alone.
	Device *DeviceSpec `json:"device,omitempty"`
	// Options replaces the solver options wholesale when non-nil.
	Options *SolveOptions `json:"options,omitempty"`
	// Priority replaces the queue priority when non-nil.
	Priority *int `json:"priority,omitempty"`
}

// overlay merges the amendment onto the base request, returning the
// complete request of the amended job.
func (a *AmendRequest) overlay(base *Request) *Request {
	merged := *base
	if a.Graph != nil {
		merged.Graph = *a.Graph
	}
	if a.Allocation != nil {
		merged.Allocation = a.Allocation
	}
	if a.Device != nil {
		d := base.Device
		if a.Device.Name != "" {
			d.Name = a.Device.Name
		}
		if a.Device.CapacityFG > 0 {
			d.CapacityFG = a.Device.CapacityFG
		}
		if a.Device.Alpha > 0 {
			d.Alpha = a.Device.Alpha
		}
		if a.Device.ScratchMem > 0 {
			d.ScratchMem = a.Device.ScratchMem
		}
		merged.Device = d
	}
	if a.Options != nil {
		merged.Options = *a.Options
	}
	if a.Priority != nil {
		merged.Priority = *a.Priority
	}
	return &merged
}

// instance is a compiled request: the validated core instance and
// options plus the canonical dedup/cache key. record marks a request
// that must run fresh under a flight recorder.
type instance struct {
	inst   core.Instance
	opt    core.Options
	key    string
	record bool
	// chain is the structural signature used by batch warm-chaining:
	// the canonical key with the device zeroed out. Batch items sharing
	// a chain signature differ only in device parameters (capacity,
	// alpha, scratch memory) — exactly the bound edits the delta engine
	// can re-solve warm from a neighbor's cached build.
	chain string
}

// compile parses and validates the request. The default timeout fills
// an unset time limit, so every member of a singleflight group shares
// one effective deadline (the limit is part of the cache key); the
// default parallelism fills an unset worker count the same way.
func (r *Request) compile(defaultTimeout time.Duration, defaultParallelism int) (*instance, error) {
	if strings.TrimSpace(r.Graph) == "" {
		return nil, fmt.Errorf("service: empty graph")
	}
	g, err := graph.ParseString(r.Graph)
	if err != nil {
		return nil, fmt.Errorf("service: parsing graph: %w", err)
	}
	lib := library.DefaultLibrary()
	var alloc *library.Allocation
	if len(r.Allocation) == 0 {
		alloc, err = library.PaperAllocation(lib, 2, 2, 1)
	} else {
		alloc, err = library.NewAllocation(lib, r.Allocation)
	}
	if err != nil {
		return nil, fmt.Errorf("service: building allocation: %w", err)
	}
	dev, err := r.Device.resolve()
	if err != nil {
		return nil, err
	}
	opt := r.Options.Options
	// observability hooks are attached per job by the service, never
	// taken from the wire (the JSON tags hide them, but a Go caller
	// could have set the pointers directly)
	opt.Trace = nil
	opt.Record = nil
	opt.Profile = nil
	opt.Span = nil
	opt.BlackBox = nil
	opt.Status = nil
	opt.PanicNode = 0
	opt.NodeDelay = 0
	opt.Tightened = opt.Tightened || !r.Options.Base
	if r.Options.Fortet {
		opt.Linearization = core.LinFortet
	}
	opt.TimeLimit = defaultTimeout
	if r.Options.TimeLimitMS > 0 {
		opt.TimeLimit = time.Duration(r.Options.TimeLimitMS) * time.Millisecond
	}
	if opt.Parallelism == 0 {
		opt.Parallelism = defaultParallelism
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	ci := &instance{
		inst:   core.Instance{Graph: g, Alloc: alloc, Device: dev},
		opt:    opt,
		record: r.Options.Record,
	}
	if err := ci.inst.Validate(); err != nil {
		return nil, err
	}
	ci.key = canonicalKey(g, alloc, dev, opt)
	ci.chain = canonicalKey(g, alloc, library.Device{}, opt)
	return ci, nil
}

// canonicalKey hashes the full instance identity — graph, exploration
// set, device parameters (N, L, Ms, C, alpha) and solver options —
// over canonical serializations, so textual variations of the same
// request (whitespace, map order) collapse to one key. The search
// knobs are folded through EffectiveSearch first, so the legacy flat
// spelling and the options.search spelling of one configuration share
// a cache entry. Parallelism and Threshold are deliberately excluded:
// a parallel solve returns the same result as a serial one, so
// requests differing only in worker count or gating deduplicate. The
// mode, branch rule and strengthening toggles stay in the key — they
// cannot change the optimum, but they can change which of several
// tied optimal assignments is reported.
func canonicalKey(g *graph.Graph, alloc *library.Allocation, dev library.Device, opt core.Options) string {
	eff := opt.EffectiveSearch()
	eff.Parallelism = 0
	eff.Threshold = 0
	opt.Search = nil // a pointer: %+v would hash its address
	opt.Parallelism = 0
	opt.ParallelThreshold = 0
	opt.Branch = eff.Branch
	// per-job observability must not perturb the identity
	opt.Trace = nil
	opt.Record = nil
	opt.Profile = nil
	opt.Span = nil
	opt.BlackBox = nil
	opt.Status = nil
	opt.PanicNode = 0
	opt.NodeDelay = 0
	h := sha256.New()
	fmt.Fprintf(h, "graph:%s\n", g.String())
	fmt.Fprintf(h, "alloc:%s\n", alloc.String())
	fmt.Fprintf(h, "device:%s|%d|%g|%d\n", dev.Name, dev.CapacityFG, dev.Alpha, dev.ScratchMem)
	fmt.Fprintf(h, "options:%+v\n", opt)
	fmt.Fprintf(h, "search:%+v\n", eff)
	return hex.EncodeToString(h.Sum(nil))
}
