package service

// End-to-end tests of the flight-recorder surface: record-mode jobs,
// the /v1/jobs/{id}/recording download in both wire forms, SSE resume
// via Last-Event-ID, and the per-phase histograms on /v1/metrics.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestV1RecordingDownload drives a record-mode job end to end: submit
// with options.record, wait for completion, download the capture in
// both the NDJSON and gzipped forms, and decode each back into the
// same search tree.
func TestV1RecordingDownload(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// no prime heuristic: force a real branch-and-bound tree so the
	// recording has nodes beyond the root
	req := fastRequest()
	req.Options.PrimeHeuristic = false
	req.Options.Record = true

	var job JobInfo
	postV1(t, ts.URL+"/v1/jobs", req, http.StatusAccepted, &job)
	info := waitFinished(t, s, job.ID, 30*time.Second)
	if info.Status != StatusDone {
		t.Fatalf("job finished %s: %s", info.Status, info.Error)
	}
	if info.CacheHit {
		t.Fatal("record-mode job reported a cache hit; it must run fresh")
	}

	fetch := func(suffix string, wantCT string) *trace.Recording {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/recording" + suffix)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("recording%s: status %d: %s", suffix, resp.StatusCode, b)
		}
		if ct := resp.Header.Get("Content-Type"); ct != wantCT {
			t.Fatalf("recording%s: Content-Type %q, want %q", suffix, ct, wantCT)
		}
		rec, err := trace.DecodeRecording(resp.Body)
		if err != nil {
			t.Fatalf("decoding recording%s: %v", suffix, err)
		}
		return rec
	}

	plain := fetch("", "application/x-ndjson")
	gzipped := fetch("?gz=1", "application/gzip")

	if len(plain.Nodes) == 0 {
		t.Fatal("recording has no nodes")
	}
	if plain.Nodes[0].ID != 1 || plain.Nodes[0].Parent != 0 {
		t.Fatalf("first node is %+v, want the root (id 1, parent 0)", plain.Nodes[0])
	}
	if plain.Status == "" || plain.WallNS <= 0 {
		t.Fatalf("footer incomplete: status %q wall %d", plain.Status, plain.WallNS)
	}
	if len(plain.Incumbents) == 0 {
		t.Fatal("recording has no incumbents for a feasible solve")
	}
	if len(plain.Phases) == 0 {
		t.Fatal("recording footer carries no phase attribution")
	}
	for _, ph := range plain.Phases {
		if _, ok := trace.ParsePhase(ph.Name); !ok {
			t.Fatalf("footer phase %q not in the taxonomy", ph.Name)
		}
	}

	// both wire forms decode to the identical tree
	if len(gzipped.Nodes) != len(plain.Nodes) {
		t.Fatalf("gzip decode: %d nodes, plain %d", len(gzipped.Nodes), len(plain.Nodes))
	}
	for i := range plain.Nodes {
		if plain.Nodes[i] != gzipped.Nodes[i] {
			t.Fatalf("node %d differs between wire forms:\nplain %+v\ngzip  %+v",
				i, plain.Nodes[i], gzipped.Nodes[i])
		}
	}

	// the produced result is still cached: an identical unrecorded
	// request must be served as a cache hit
	req2 := fastRequest()
	req2.Options.PrimeHeuristic = false
	var job2 JobInfo
	postV1(t, ts.URL+"/v1/jobs", req2, http.StatusAccepted, &job2)
	info2 := waitFinished(t, s, job2.ID, 30*time.Second)
	if !info2.CacheHit {
		t.Error("identical unrecorded request missed the cache after a recorded solve")
	}
}

// TestV1RecordingNotFound checks the 404 split: unknown job vs. a real
// job that has no recording.
func TestV1RecordingNotFound(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeBounded(t, s)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	get := func(id string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/recording")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env errorEnvelope
		b, _ := io.ReadAll(resp.Body)
		if err := json.Unmarshal(b, &env); err != nil {
			t.Fatalf("decoding error body %q: %v", b, err)
		}
		return resp.StatusCode, env.Error.Code
	}

	if code, ec := get("nosuch"); code != http.StatusNotFound || ec != "not_found" {
		t.Fatalf("unknown job: %d/%s, want 404/not_found", code, ec)
	}

	var job JobInfo
	postV1(t, ts.URL+"/v1/jobs", fastRequest(), http.StatusAccepted, &job)
	waitFinished(t, s, job.ID, 30*time.Second)
	if code, ec := get(job.ID); code != http.StatusNotFound || ec != "no_recording" {
		t.Fatalf("unrecorded job: %d/%s, want 404/no_recording", code, ec)
	}
}

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	id   uint64
	kind string
	data string
}

// readSSE consumes an event stream to EOF, returning the frames.
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var (
		evs []sseEvent
		cur sseEvent
	)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			v, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id = v
		case strings.HasPrefix(line, "event: "):
			cur.kind = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		case line == "":
			if cur.kind != "" || cur.data != "" {
				evs = append(evs, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestV1EventsLastEventIDResume checks the SSE resume contract: ids are
// the 1-based absolute stream positions, and a reconnect carrying
// Last-Event-ID receives exactly the events after that position.
func TestV1EventsLastEventIDResume(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	req := fastRequest()
	req.Options.PrimeHeuristic = false
	var job JobInfo
	postV1(t, ts.URL+"/v1/jobs", req, http.StatusAccepted, &job)

	stream := func(lastEventID string) []sseEvent {
		t.Helper()
		hreq, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+job.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastEventID != "" {
			hreq.Header.Set("Last-Event-ID", lastEventID)
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events: status %d", resp.StatusCode)
		}
		return readSSE(t, resp.Body)
	}

	full := stream("")
	if len(full) < 3 {
		t.Fatalf("need a few events to exercise resume, got %d", len(full))
	}
	for i, e := range full {
		if e.id != uint64(i+1) {
			t.Fatalf("event %d has id %d, want the absolute position %d", i, e.id, i+1)
		}
	}

	// the job is finished, so the ring is closed and replays from any
	// cursor; resume from the middle and expect exactly the tail
	mid := full[len(full)/2]
	resumed := stream(strconv.FormatUint(mid.id, 10))
	want := full[len(full)/2+1:]
	if len(resumed) != len(want) {
		t.Fatalf("resume after id %d returned %d events, want %d", mid.id, len(resumed), len(want))
	}
	for i := range want {
		if resumed[i].id != want[i].id || resumed[i].kind != want[i].kind || resumed[i].data != want[i].data {
			t.Fatalf("resumed event %d = %+v, want %+v", i, resumed[i], want[i])
		}
	}

	// a junk Last-Event-ID degrades to a full replay, never an error
	if junk := stream("not-a-number"); len(junk) != len(full) {
		t.Fatalf("junk Last-Event-ID: %d events, want the full %d", len(junk), len(full))
	}
}

// TestV1MetricsPhaseHistograms checks that a fresh solve populates the
// tpserve_phase_seconds histograms on /v1/metrics with well-formed
// cumulative buckets.
func TestV1MetricsPhaseHistograms(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeBounded(t, s)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	req := fastRequest()
	req.Options.PrimeHeuristic = false
	var job JobInfo
	postV1(t, ts.URL+"/v1/jobs", req, http.StatusAccepted, &job)
	waitFinished(t, s, job.ID, 30*time.Second)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		"# TYPE tpserve_phase_seconds histogram",
		`tpserve_phase_seconds_bucket{phase="node-lp",le="+Inf"}`,
		`tpserve_phase_seconds_count{phase="node-lp"}`,
		`tpserve_phase_seconds_sum{phase="node-lp"}`,
		`tpserve_phase_seconds_bucket{phase="pricing"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// the JSON stats expose the same phases; node-lp must dominate its
	// LP-internal children in total time
	st := s.Stats()
	var nodeLP, pricing int64
	for _, ph := range st.Phases {
		switch ph.Name {
		case trace.PhaseNodeLP.String():
			nodeLP = ph.SumNS
		case trace.PhasePricing.String():
			pricing = ph.SumNS
		}
		if ph.Count <= 0 {
			t.Errorf("phase %s has count %d", ph.Name, ph.Count)
		}
	}
	if nodeLP == 0 {
		t.Fatal("no node-lp time attributed after a fresh solve")
	}
	if pricing > nodeLP {
		t.Fatalf("pricing %dns exceeds its parent node-lp %dns", pricing, nodeLP)
	}
}
