package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/exact"
)

// TestV1CertificateEndpoint: a job submitted with options.certify
// serves its certificate over GET /v1/jobs/{id}/certificate, and the
// served JSON re-verifies client-side — the whole point of shipping
// the proof instead of the verdict.
func TestV1CertificateEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeBounded(t, s)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	req := fastRequest()
	req.Options.Certify = true
	var job JobInfo
	postV1(t, ts.URL+"/v1/jobs", req, http.StatusAccepted, &job)
	if info := waitFinished(t, s, job.ID, 60*time.Second); info.Status != StatusDone {
		t.Fatalf("job ended %s", info.Status)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/certificate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var cert exact.Certificate
	if err := json.NewDecoder(resp.Body).Decode(&cert); err != nil {
		t.Fatal(err)
	}
	if cert.Kind == "" || cert.Problem == nil {
		t.Fatalf("certificate not self-contained: %+v", cert)
	}
	cert.Check() // client-side re-verification from the wire bytes
	if !cert.Valid {
		t.Fatalf("served certificate failed re-verification: %v", cert.Err())
	}
}

// TestV1CertificateAbsent: a job submitted without options.certify
// answers 404 with the no_certificate code, pointing the caller at the
// option rather than leaving an empty 200 to misread.
func TestV1CertificateAbsent(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeBounded(t, s)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	var job JobInfo
	postV1(t, ts.URL+"/v1/jobs", fastRequest(), http.StatusAccepted, &job)
	if info := waitFinished(t, s, job.ID, 60*time.Second); info.Status != StatusDone {
		t.Fatalf("job ended %s", info.Status)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/certificate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "no_certificate" {
		t.Fatalf("error code %q, want no_certificate", env.Error.Code)
	}
}
