package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// postV1 marshals req and POSTs it to url, decoding the response into
// out when the status matches want.
func postV1(t *testing.T, url string, req *Request, want int, out any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, want, b)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestV1EventsSSE drives the observability tentpole end to end: submit
// a job over POST /v1/jobs, stream GET /v1/jobs/{id}/events until the
// server ends the stream, and check the event taxonomy — a model event,
// a root bound, at least one incumbent, a monotone best bound, and the
// terminal job transition last.
func TestV1EventsSSE(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// no prime heuristic: the incumbent must come from the branch and
	// bound itself, so the stream carries real incumbent events
	req := fastRequest()
	req.Options.PrimeHeuristic = false

	var job JobInfo
	postV1(t, ts.URL+"/v1/jobs", req, http.StatusAccepted, &job)
	if job.ID == "" {
		t.Fatal("submit returned no job ID")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: Content-Type %q", ct)
	}

	// the stream ends when the job finalizes and its ring closes; the
	// server closes the response body, so reading to EOF is the contract
	var events []trace.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e trace.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &e); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}

	kinds := map[trace.Kind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, k := range []trace.Kind{trace.KindModel, trace.KindRoot, trace.KindIncumbent, trace.KindJob} {
		if kinds[k] == 0 {
			t.Errorf("no %q event in stream (got %v)", k, kinds)
		}
	}

	// the proved bound never regresses across root/node/bound/status
	prev := -1e18
	for _, e := range events {
		switch e.Kind {
		case trace.KindRoot, trace.KindNode, trace.KindBound, trace.KindStatus:
			if e.Bound < prev-1e-9 {
				t.Fatalf("bound regressed: %g after %g (seq %d)", e.Bound, prev, e.Seq)
			}
			if e.Bound > prev {
				prev = e.Bound
			}
		}
	}

	last := events[len(events)-1]
	if last.Kind != trace.KindJob {
		t.Fatalf("last event kind %q, want job", last.Kind)
	}
	if last.Status != string(StatusDone) {
		t.Fatalf("terminal job status %q, want done", last.Status)
	}
	if !last.HasIncumbent {
		t.Fatal("terminal job event carries no incumbent")
	}

	info := waitFinished(t, s, job.ID, time.Second)
	if info.Status != StatusDone {
		t.Fatalf("job finished %s: %s", info.Status, info.Error)
	}
}

// TestV1ErrorEnvelope checks the uniform {"error":{code,message}} body
// and status mapping of the v1 surface.
func TestV1ErrorEnvelope(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	check := func(resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
		}
		var e errorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("decoding envelope: %v", err)
		}
		if e.Error.Code != wantCode {
			t.Fatalf("code %q, want %q", e.Error.Code, wantCode)
		}
		if e.Error.Message == "" {
			t.Fatal("empty error message")
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusNotFound, "not_found")

	resp, err = http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusNotFound, "not_found")

	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusBadRequest, "bad_request")

	resp, err = http.Post(ts.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"graph":""}`))
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusBadRequest, "bad_request")
}

// TestV1MetricsPrometheus checks the text exposition endpoint.
func TestV1MetricsPrometheus(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	if _, err := s.Solve(context.Background(), fastRequest()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE tpserve_workers gauge",
		"# TYPE tpserve_jobs_submitted_total counter",
		"tpserve_jobs_submitted_total 1",
		"tpserve_jobs_completed_total 1",
		"tpserve_bb_nodes_total",
		"tpserve_lp_pivots_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestRemovedAliases checks the end state of the pre-/v1 deprecation
// cycle: the unversioned paths are gone and answer with the typed 404
// envelope naming their /v1 successor, except GET /healthz, which
// survives as a permanent liveness alias for probes configured outside
// the API's versioning.
func TestRemovedAliases(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	checkGone := func(resp *http.Response, path, successor string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
		var e errorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: 404 body is not the error envelope: %v", path, err)
		}
		if e.Error.Code != "gone" {
			t.Errorf("%s: error code %q, want gone", path, e.Error.Code)
		}
		if !strings.Contains(e.Error.Message, successor) {
			t.Errorf("%s: message %q does not name successor %s", path, e.Error.Message, successor)
		}
	}

	for _, tc := range []struct{ alias, successor string }{
		{"/metrics", "/v1/stats"},
		{"/jobs/some-id", "/v1/jobs/some-id"},
	} {
		resp, err := http.Get(ts.URL + tc.alias)
		if err != nil {
			t.Fatal(err)
		}
		checkGone(resp, "GET "+tc.alias, tc.successor)
	}
	body, _ := json.Marshal(fastRequest())
	for _, tc := range []struct{ alias, successor string }{
		{"/solve", "/v1/solve"},
		{"/jobs", "/v1/jobs"},
	} {
		resp, err := http.Post(ts.URL+tc.alias, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		checkGone(resp, "POST "+tc.alias, tc.successor)
	}

	// unknown paths outside the alias set get the envelope too
	resp, err := http.Get(ts.URL + "/no/such/endpoint")
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
		}
		var e errorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("unknown path: 404 body is not the error envelope: %v", err)
		}
		if e.Error.Code != "not_found" {
			t.Errorf("unknown path: error code %q, want not_found", e.Error.Code)
		}
	}()

	// the liveness exception: /healthz still answers, identically to
	// /v1/healthz and without deprecation headers
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "" {
			t.Errorf("GET %s: unexpected Deprecation header", path)
		}
		if !strings.Contains(string(b), `"ok"`) {
			t.Errorf("GET %s: body %s", path, b)
		}
	}
}

// TestStatsChurn hammers Stats() while jobs are submitted, cancelled
// and completed concurrently. Run under -race it proves the metrics
// counters are consistently locked; the final snapshot must balance.
func TestStatsChurn(t *testing.T) {
	s := New(Config{Workers: 4})
	defer closeBounded(t, s)

	const (
		submitters    = 4
		perSubmitter  = 6
		totalSubmits  = submitters * perSubmitter
		statsReaders  = 4
		statsDuration = 200 * time.Millisecond
	)

	var wg sync.WaitGroup
	ids := make(chan string, totalSubmits)

	stop := make(chan struct{})
	for r := 0; r < statsReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				if st.Submitted < st.Completed+st.Failed+st.Cancelled {
					t.Errorf("stats ran ahead: %+v", st)
					return
				}
				_ = st.Workers
			}
		}()
	}

	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				req := fastRequest()
				id, err := s.Submit(req)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				// cancel a third of the jobs right away: some while
				// queued, some mid-solve, some already finished
				if i%3 == 0 {
					s.Cancel(id)
				}
				ids <- id
			}
		}(g)
	}

	deadline := time.After(statsDuration)
	<-deadline
	close(stop)

	collected := make([]string, 0, totalSubmits)
	for len(collected) < totalSubmits {
		collected = append(collected, <-ids)
	}
	for _, id := range collected {
		waitFinished(t, s, id, 30*time.Second)
	}
	wg.Wait()

	st := s.Stats()
	if st.Submitted != totalSubmits {
		t.Fatalf("submitted = %d, want %d", st.Submitted, totalSubmits)
	}
	if got := st.Completed + st.Failed + st.Cancelled; got != totalSubmits {
		t.Fatalf("completed %d + failed %d + cancelled %d = %d, want %d",
			st.Completed, st.Failed, st.Cancelled, got, totalSubmits)
	}
	if st.Failed != 0 {
		t.Fatalf("failed = %d, want 0", st.Failed)
	}
	// the running gauge may lag a cancelled job's terminal status by a
	// scheduling tick (Cancel settles the job while its worker is still
	// unwinding run), so poll for the drain instead of asserting on one
	// snapshot
	deadlineAt := time.Now().Add(10 * time.Second)
	for st.Running != 0 || st.Queued != 0 {
		if time.Now().After(deadlineAt) {
			t.Fatalf("service not drained: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
		st = s.Stats()
	}
}
