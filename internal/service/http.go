package service

// The JSON HTTP API of the service, mounted by cmd/tpserve and
// exercised end-to-end by the httptest suite:
//
//	POST   /solve      synchronous solve; the request context (client
//	                   disconnect, server timeout) cancels the search
//	POST   /jobs       asynchronous submit, returns the job record
//	GET    /jobs/{id}  job status + result
//	DELETE /jobs/{id}  cooperative cancellation
//	GET    /metrics    aggregate metrics snapshot
//	GET    /healthz    liveness
//
// Only net/http and encoding/json; no external dependencies.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// NewHandler mounts the service's HTTP API on a fresh mux.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"workers": s.Workers(),
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	mux.HandleFunc("POST /solve", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeRequest(w, r)
		if !ok {
			return
		}
		info, err := s.Solve(r.Context(), req)
		if err != nil && info.ID == "" {
			writeSubmitError(w, err)
			return
		}
		code := http.StatusOK
		if err != nil {
			// the client went away or its deadline passed; the job was
			// cancelled cooperatively
			code = statusClientClosedRequest
		}
		writeJSON(w, code, info)
	})

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeRequest(w, r)
		if !ok {
			return
		}
		id, err := s.Submit(req)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		info, _ := s.Job(id)
		writeJSON(w, http.StatusAccepted, info)
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, err := s.Job(id); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		s.Cancel(id) // best effort: false just means it already finished
		info, err := s.Job(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	return mux
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request", the closest fit for a solve cancelled by a disconnecting
// caller (the response is usually unread anyway).
const statusClientClosedRequest = 499

func decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, bool) {
	var req Request
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return nil, false
	}
	return &req, true
}

func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
