package service

// The versioned JSON HTTP API of the service, mounted by cmd/tpserve
// and exercised end-to-end by the httptest suite:
//
//	POST   /v1/solve            synchronous solve; the request context
//	                            (client disconnect, server timeout)
//	                            cancels the search
//	POST   /v1/jobs             asynchronous submit, returns the job record
//	GET    /v1/jobs/{id}        job status + result
//	DELETE /v1/jobs/{id}        cooperative cancellation
//	POST   /v1/jobs/{id}/amend  re-solve a finished job with a partial
//	                            edit overlaid; bound-only edits (C, Ms,
//	                            α) warm-start from the base job's build.
//	                            409 while the base is queued/running.
//	POST   /v1/sweep            synchronous (N, L, Ms, C, α) design-space
//	                            scan; neighboring points share presolve
//	                            and warm starts through the delta engine
//	GET    /v1/jobs/{id}/events live solve progress as Server-Sent Events;
//	                            honors Last-Event-ID for resume
//	GET    /v1/jobs/{id}/recording
//	                            flight-recorder capture of a job
//	                            submitted with options.record (NDJSON;
//	                            ?gz=1 for the gzipped form)
//	GET    /v1/jobs/{id}/certificate
//	                            exact-arithmetic certificate of a job
//	                            submitted with options.certify (JSON)
//	GET    /v1/jobs/{id}/spans  the job's span tree (finished spans,
//	                            oldest first); pollable while it runs
//	GET    /v1/jobs/{id}/blackbox
//	                            black-box dump: the frozen anomaly
//	                            capture when the box flushed, else the
//	                            rolling live tail
//	GET    /v1/debug/solves     live snapshot of every in-flight search
//	                            (nodes, incumbent, bound, gap, steals,
//	                            per-worker phases)
//	GET    /v1/version          build identity of the running binary
//	GET    /v1/metrics          Prometheus text exposition
//	GET    /v1/stats            aggregate metrics snapshot (JSON)
//	GET    /v1/healthz          liveness
//
// POST /v1/solve and POST /v1/jobs accept a W3C traceparent header; the
// job's span tree adopts the caller's trace id and the response carries
// a traceparent header naming the job's root span.
//
// Errors are a uniform envelope: {"error":{"code":..., "message":...}},
// including the catch-all 404 for unknown paths.
//
// The pre-versioning aliases (/solve, /jobs, /jobs/{id}, the JSON
// /metrics) served through several deprecation cycles with
// "Deprecation: true" headers and successor-version Links; they are
// now gone — requests to them get the typed 404 envelope whose message
// names the /v1 successor. The one survivor is GET /healthz: liveness
// probes are wired into infrastructure outside the API's versioning
// (load balancers, container runtimes), so the unversioned path stays
// as a permanent alias of /v1/healthz.
//
// Only net/http and encoding/json; no external dependencies.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// NewHandler mounts the service's HTTP API on a fresh mux.
func NewHandler(s *Service) http.Handler {
	a := &api{s: s}
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/healthz", a.healthz)
	mux.HandleFunc("GET /v1/metrics", a.metrics)
	mux.HandleFunc("GET /v1/stats", a.stats)
	mux.HandleFunc("POST /v1/solve", a.solve)
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", a.job)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	mux.HandleFunc("POST /v1/jobs/{id}/amend", a.amend)
	mux.HandleFunc("POST /v1/sweep", a.sweep)
	mux.HandleFunc("GET /v1/jobs/{id}/events", a.events)
	mux.HandleFunc("GET /v1/jobs/{id}/recording", a.recording)
	mux.HandleFunc("GET /v1/jobs/{id}/certificate", a.certificate)
	mux.HandleFunc("GET /v1/jobs/{id}/spans", a.spans)
	mux.HandleFunc("GET /v1/jobs/{id}/blackbox", a.blackbox)
	mux.HandleFunc("GET /v1/debug/solves", a.debugSolves)
	mux.HandleFunc("GET /v1/version", a.version)

	// the liveness exception: probes configured in infrastructure
	// predate (and outlive) API versioning
	mux.HandleFunc("GET /healthz", a.healthz)

	// everything else — including the removed pre-/v1 aliases — gets
	// the typed 404 envelope instead of the mux's plain-text default
	mux.HandleFunc("/", a.notFound)

	return mux
}

// api holds the handler methods; one instance per NewHandler call.
type api struct {
	s *Service
}

// notFound is the catch-all for paths outside the mounted API,
// answering with the uniform error envelope. The removed pre-/v1
// aliases get a message pointing at their successor so old clients
// see where to migrate.
func (a *api) notFound(w http.ResponseWriter, r *http.Request) {
	successor := map[string]string{
		"/solve":   "/v1/solve",
		"/jobs":    "/v1/jobs",
		"/metrics": "/v1/stats",
	}
	path := r.URL.Path
	s, ok := successor[path]
	if !ok && len(path) > len("/jobs/") && path[:len("/jobs/")] == "/jobs/" {
		s, ok = "/v1"+path, true
	}
	if ok {
		writeError(w, http.StatusNotFound, "gone",
			fmt.Sprintf("the unversioned %s endpoint was removed; use %s", path, s))
		return
	}
	writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no such endpoint %s", path))
}

func (a *api) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": a.s.Workers(),
	})
}

func (a *api) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.s.Stats())
}

func (a *api) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.s.Stats().WritePrometheus(w)
}

func (a *api) solve(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	info, err := a.s.Solve(r.Context(), req)
	if err != nil && info.ID == "" {
		writeSubmitError(w, err)
		return
	}
	code := http.StatusOK
	if err != nil {
		// the client went away or its deadline passed; the job was
		// cancelled cooperatively
		code = statusClientClosedRequest
	}
	a.echoTraceContext(w, info.ID)
	writeJSON(w, code, info)
}

func (a *api) submit(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	id, err := a.s.Submit(req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	info, _ := a.s.Job(id)
	a.echoTraceContext(w, id)
	writeJSON(w, http.StatusAccepted, info)
}

// echoTraceContext stamps the response with the traceparent value of
// the job's root span, so the caller can stitch the job into its own
// distributed trace (and fetch the span tree by trace id later).
func (a *api) echoTraceContext(w http.ResponseWriter, id string) {
	if id == "" {
		return
	}
	if tp, err := a.s.TraceContext(id); err == nil && tp != "" {
		w.Header().Set("Traceparent", tp)
	}
}

func (a *api) job(w http.ResponseWriter, r *http.Request) {
	info, err := a.s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (a *api) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := a.s.Job(id); err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	a.s.Cancel(id) // best effort: false just means it already finished
	info, err := a.s.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// amend enqueues a re-solve of a finished job with a partial edit
// overlaid onto its request. The new job carries the base's lineage
// (amend.of/generation in its record) and its solve dispatches through
// the delta engine. 404 for unknown base jobs, 409 while the base is
// still queued or running.
func (a *api) amend(w http.ResponseWriter, r *http.Request) {
	var areq AmendRequest
	if err := json.NewDecoder(r.Body).Decode(&areq); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding amendment: %v", err))
		return
	}
	id, err := a.s.Amend(r.PathValue("id"), &areq)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownJob):
			writeError(w, http.StatusNotFound, "not_found", err.Error())
		case errors.Is(err, ErrJobRunning):
			writeError(w, http.StatusConflict, "job_running", err.Error())
		default:
			writeSubmitError(w, err)
		}
		return
	}
	info, _ := a.s.Job(id)
	writeJSON(w, http.StatusAccepted, info)
}

// sweep runs a synchronous design-space scan; the request context
// cancels it. Oversized grids and invalid points are 400s.
func (a *api) sweep(w http.ResponseWriter, r *http.Request) {
	var sreq SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&sreq); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding sweep: %v", err))
		return
	}
	res, err := a.s.Sweep(r.Context(), &sreq)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			writeError(w, statusClientClosedRequest, "cancelled", err.Error())
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
		default:
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// events streams the job's solve trace as Server-Sent Events: one
// event per trace.Event, the event name set to the kind, the id to the
// event's 1-based absolute position in the job's stream, the data to
// the JSON encoding. A reconnecting client sends the standard
// Last-Event-ID header (the browser EventSource does this
// automatically) and the stream resumes after that position — events
// still held by the ring are replayed, events that aged out of the
// bounded ring are lost, never duplicated. The stream ends when the
// job reaches a terminal state (the final "job" event is sent first)
// or the client disconnects. Sampled node events carry the incumbent
// objective, the proved bound, the relative gap and the node count, so
// `curl -N` renders live solver progress.
func (a *api) events(w http.ResponseWriter, r *http.Request) {
	ring, err := a.s.Events(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "unsupported", "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// SSE ids are the ring's absolute event indices, so Last-Event-ID
	// parses directly into the resume cursor for Since.
	var cursor uint64
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if v, perr := strconv.ParseUint(last, 10, 64); perr == nil {
			cursor = v
		}
	}
	for {
		// take the wait channel BEFORE draining: an event emitted
		// between Since and Wait would otherwise be missed until the
		// next one arrives
		wait := ring.Wait()
		evs, next := ring.Since(cursor)
		cursor = next
		for i, e := range evs {
			data, jerr := json.Marshal(e)
			if jerr != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n",
				next-uint64(len(evs)-1-i), e.Kind, data)
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if ring.Closed() {
			// drain anything emitted between Since and Close
			if evs, next = ring.Since(cursor); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		}
	}
}

// recording serves a finished job's flight-recorder capture: NDJSON by
// default, the gzipped wire form with ?gz=1 (the decoder auto-detects
// either). 404s distinguish an unknown job from a job that has no
// recording (not submitted with options.record, or not finished yet).
func (a *api) recording(w http.ResponseWriter, r *http.Request) {
	rec, err := a.s.Recording(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	if rec == nil {
		writeError(w, http.StatusNotFound, "no_recording",
			"job has no recording: submit with options.record and wait for it to finish")
		return
	}
	gz := r.URL.Query().Get("gz") == "1"
	if gz {
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", r.PathValue("id")+".ndjson.gz"))
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	_ = rec.Encode(w, gz)
}

func (a *api) certificate(w http.ResponseWriter, r *http.Request) {
	cert, err := a.s.Certificate(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	if cert == nil {
		writeError(w, http.StatusNotFound, "no_certificate",
			"job has no certificate: submit with options.certify and wait for it to finish")
		return
	}
	writeJSON(w, http.StatusOK, cert)
}

// spans serves the job's finished spans, oldest first. Pollable while
// the job runs: spans appear as they end, the request root last.
func (a *api) spans(w http.ResponseWriter, r *http.Request) {
	recs, err := a.s.Spans(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"spans": recs})
}

// blackbox serves the job's black-box dump: frozen at the anomaly when
// the box flushed (worker panic, deadline, certification failure,
// watchdog stall), otherwise the rolling tail of recent solve events.
func (a *api) blackbox(w http.ResponseWriter, r *http.Request) {
	d, err := a.s.BlackBox(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// debugSolves serves a live snapshot of every in-flight search.
func (a *api) debugSolves(w http.ResponseWriter, r *http.Request) {
	solves := a.s.DebugSolves()
	if solves == nil {
		solves = []SolveDebug{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"solves": solves})
}

// version serves the build identity of the running binary.
func (a *api) version(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Version())
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request", the closest fit for a solve cancelled by a disconnecting
// caller (the response is usually unread anyway).
const statusClientClosedRequest = 499

func decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, bool) {
	var req Request
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding request: %v", err))
		return nil, false
	}
	// adopt the caller's distributed-trace identity, if any (the header
	// is validated when the job's span collector is created)
	req.TraceParent = r.Header.Get("Traceparent")
	return &req, true
}

func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "queue_full", err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
	default:
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	}
}

// errorEnvelope is the uniform error body of every endpoint.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
