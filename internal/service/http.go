package service

// The versioned JSON HTTP API of the service, mounted by cmd/tpserve
// and exercised end-to-end by the httptest suite:
//
//	POST   /v1/solve            synchronous solve; the request context
//	                            (client disconnect, server timeout)
//	                            cancels the search
//	POST   /v1/jobs             asynchronous submit, returns the job record
//	GET    /v1/jobs/{id}        job status + result
//	DELETE /v1/jobs/{id}        cooperative cancellation
//	POST   /v1/jobs/{id}/amend  re-solve a finished job with a partial
//	                            edit overlaid; bound-only edits (C, Ms,
//	                            α) warm-start from the base job's build.
//	                            409 while the base is queued/running.
//	POST   /v1/batch            submit up to Config.MaxBatch solve
//	                            requests at once; items differing only
//	                            in device parameters are chained through
//	                            the delta engine in sweep order, each
//	                            successor warm-started from its
//	                            predecessor's cached build
//	GET    /v1/batch/{id}       batch status: per-item job records plus
//	                            chain and completion accounting
//	POST   /v1/sweep            synchronous (N, L, Ms, C, α) design-space
//	                            scan; neighboring points share presolve
//	                            and warm starts through the delta engine
//	GET    /v1/jobs/{id}/events live solve progress as Server-Sent Events;
//	                            honors Last-Event-ID for resume
//	GET    /v1/jobs/{id}/recording
//	                            flight-recorder capture of a job
//	                            submitted with options.record (NDJSON;
//	                            ?gz=1 for the gzipped form)
//	GET    /v1/jobs/{id}/certificate
//	                            exact-arithmetic certificate of a job
//	                            submitted with options.certify (JSON)
//	GET    /v1/jobs/{id}/spans  the job's span tree (finished spans,
//	                            oldest first); pollable while it runs
//	GET    /v1/jobs/{id}/blackbox
//	                            black-box dump: the frozen anomaly
//	                            capture when the box flushed, else the
//	                            rolling live tail
//	GET    /v1/debug/solves     live snapshot of every in-flight search
//	                            (nodes, incumbent, bound, gap, steals,
//	                            per-worker phases)
//	GET    /v1/version          build identity of the running binary
//	GET    /v1/metrics          Prometheus text exposition
//	GET    /v1/stats            aggregate metrics snapshot (JSON)
//	GET    /v1/healthz          liveness
//
// POST /v1/solve and POST /v1/jobs accept a W3C traceparent header; the
// job's span tree adopts the caller's trace id and the response carries
// a traceparent header naming the job's root span.
//
// Errors are a uniform envelope: {"error":{"code":..., "message":...}},
// including the catch-all 404 for unknown paths. Load shedding is a
// 429 with a Retry-After header and a typed code (rate_limited,
// queue_full, sweep_limit); request bodies beyond Config.MaxBodyBytes
// are a typed 413. 503 is reserved for a service that is shutting
// down.
//
// The pre-versioning aliases (/solve, /jobs, /jobs/{id}, the JSON
// /metrics) served through several deprecation cycles with
// "Deprecation: true" headers and successor-version Links; they are
// now gone — requests to them get the typed 404 envelope whose message
// names the /v1 successor. The one survivor is GET /healthz: liveness
// probes are wired into infrastructure outside the API's versioning
// (load balancers, container runtimes), so the unversioned path stays
// as a permanent alias of /v1/healthz.
//
// Only net/http and encoding/json; no external dependencies.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// NewHandler mounts the service's HTTP API on a fresh mux.
func NewHandler(s *Service) http.Handler {
	a := &api{s: s}
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/healthz", a.healthz)
	mux.HandleFunc("GET /v1/metrics", a.metrics)
	mux.HandleFunc("GET /v1/stats", a.stats)
	mux.HandleFunc("POST /v1/solve", a.solve)
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", a.job)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	mux.HandleFunc("POST /v1/jobs/{id}/amend", a.amend)
	mux.HandleFunc("POST /v1/batch", a.batch)
	mux.HandleFunc("GET /v1/batch/{id}", a.batchStatus)
	mux.HandleFunc("POST /v1/sweep", a.sweep)
	mux.HandleFunc("GET /v1/jobs/{id}/events", a.events)
	mux.HandleFunc("GET /v1/jobs/{id}/recording", a.recording)
	mux.HandleFunc("GET /v1/jobs/{id}/certificate", a.certificate)
	mux.HandleFunc("GET /v1/jobs/{id}/spans", a.spans)
	mux.HandleFunc("GET /v1/jobs/{id}/blackbox", a.blackbox)
	mux.HandleFunc("GET /v1/debug/solves", a.debugSolves)
	mux.HandleFunc("GET /v1/version", a.version)

	// the liveness exception: probes configured in infrastructure
	// predate (and outlive) API versioning
	mux.HandleFunc("GET /healthz", a.healthz)

	// everything else — including the removed pre-/v1 aliases — gets
	// the typed 404 envelope instead of the mux's plain-text default
	mux.HandleFunc("/", a.notFound)

	return mux
}

// api holds the handler methods; one instance per NewHandler call.
type api struct {
	s *Service
}

// notFound is the catch-all for paths outside the mounted API,
// answering with the uniform error envelope. The removed pre-/v1
// aliases get a message pointing at their successor so old clients
// see where to migrate.
func (a *api) notFound(w http.ResponseWriter, r *http.Request) {
	successor := map[string]string{
		"/solve":   "/v1/solve",
		"/jobs":    "/v1/jobs",
		"/metrics": "/v1/stats",
	}
	path := r.URL.Path
	s, ok := successor[path]
	if !ok && len(path) > len("/jobs/") && path[:len("/jobs/")] == "/jobs/" {
		s, ok = "/v1"+path, true
	}
	if ok {
		writeError(w, http.StatusNotFound, "gone",
			fmt.Sprintf("the unversioned %s endpoint was removed; use %s", path, s))
		return
	}
	writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no such endpoint %s", path))
}

func (a *api) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": a.s.Workers(),
	})
}

func (a *api) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.s.Stats())
}

func (a *api) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.s.Stats().WritePrometheus(w)
}

func (a *api) solve(w http.ResponseWriter, r *http.Request) {
	req, ok := a.decodeRequest(w, r)
	if !ok {
		return
	}
	info, err := a.s.Solve(r.Context(), req)
	if err != nil && info.ID == "" {
		writeSubmitError(w, err)
		return
	}
	code := http.StatusOK
	if err != nil {
		// the client went away or its deadline passed; the job was
		// cancelled cooperatively
		code = statusClientClosedRequest
	}
	a.echoTraceContext(w, info.ID)
	writeJSON(w, code, info)
}

func (a *api) submit(w http.ResponseWriter, r *http.Request) {
	req, ok := a.decodeRequest(w, r)
	if !ok {
		return
	}
	id, err := a.s.Submit(req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	info, _ := a.s.Job(id)
	a.echoTraceContext(w, id)
	writeJSON(w, http.StatusAccepted, info)
}

// echoTraceContext stamps the response with the traceparent value of
// the job's root span, so the caller can stitch the job into its own
// distributed trace (and fetch the span tree by trace id later).
func (a *api) echoTraceContext(w http.ResponseWriter, id string) {
	if id == "" {
		return
	}
	if tp, err := a.s.TraceContext(id); err == nil && tp != "" {
		w.Header().Set("Traceparent", tp)
	}
}

func (a *api) job(w http.ResponseWriter, r *http.Request) {
	info, err := a.s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (a *api) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := a.s.Job(id); err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	a.s.Cancel(id) // best effort: false just means it already finished
	info, err := a.s.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// amend enqueues a re-solve of a finished job with a partial edit
// overlaid onto its request. The new job carries the base's lineage
// (amend.of/generation in its record) and its solve dispatches through
// the delta engine. 404 for unknown base jobs, 409 while the base is
// still queued or running.
func (a *api) amend(w http.ResponseWriter, r *http.Request) {
	var areq AmendRequest
	if !a.decodeJSON(w, r, "amendment", &areq) {
		return
	}
	id, err := a.s.Amend(r.PathValue("id"), &areq)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownJob):
			writeError(w, http.StatusNotFound, "not_found", err.Error())
		case errors.Is(err, ErrJobRunning):
			writeError(w, http.StatusConflict, "job_running", err.Error())
		default:
			writeSubmitError(w, err)
		}
		return
	}
	info, _ := a.s.Job(id)
	writeJSON(w, http.StatusAccepted, info)
}

// sweep runs a synchronous design-space scan; the request context
// cancels it. Oversized grids and invalid points are 400s.
func (a *api) sweep(w http.ResponseWriter, r *http.Request) {
	var sreq SweepRequest
	if !a.decodeJSON(w, r, "sweep", &sreq) {
		return
	}
	res, err := a.s.Sweep(r.Context(), &sreq)
	if err != nil {
		var shed *ShedError
		switch {
		case r.Context().Err() != nil:
			writeError(w, statusClientClosedRequest, "cancelled", err.Error())
		case errors.As(err, &shed):
			writeShed(w, shed)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
		default:
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// batch submits up to Config.MaxBatch solve requests at once. The
// batch is admitted atomically: an invalid item, an over-budget queue
// or an empty token bucket rejects the whole call (400 or 429) with
// nothing enqueued. The 202 response is the batch view — per-item job
// records in submission order plus the number of warm chains formed.
func (a *api) batch(w http.ResponseWriter, r *http.Request) {
	var breq BatchRequest
	if !a.decodeJSON(w, r, "batch", &breq) {
		return
	}
	tp := r.Header.Get("Traceparent")
	for i, item := range breq.Items {
		if item == nil {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("batch item %d: null", i))
			return
		}
		item.TraceParent = tp
	}
	bi, err := a.s.SubmitBatch(breq.Items)
	if err != nil {
		switch {
		case errors.Is(err, ErrEmptyBatch), errors.Is(err, ErrBatchTooLarge):
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		default:
			writeSubmitError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, bi)
}

func (a *api) batchStatus(w http.ResponseWriter, r *http.Request) {
	bi, err := a.s.Batch(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, bi)
}

// events streams the job's solve trace as Server-Sent Events: one
// event per trace.Event, the event name set to the kind, the id to the
// event's 1-based absolute position in the job's stream, the data to
// the JSON encoding. A reconnecting client sends the standard
// Last-Event-ID header (the browser EventSource does this
// automatically) and the stream resumes after that position — events
// still held by the ring are replayed, events that aged out of the
// bounded ring are lost, never duplicated. The stream ends when the
// job reaches a terminal state (the final "job" event is sent first)
// or the client disconnects. Sampled node events carry the incumbent
// objective, the proved bound, the relative gap and the node count, so
// `curl -N` renders live solver progress.
func (a *api) events(w http.ResponseWriter, r *http.Request) {
	ring, err := a.s.Events(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "unsupported", "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// SSE ids are the ring's absolute event indices, so Last-Event-ID
	// parses directly into the resume cursor for Since.
	var cursor uint64
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if v, perr := strconv.ParseUint(last, 10, 64); perr == nil {
			cursor = v
		}
	}
	for {
		// take the wait channel BEFORE draining: an event emitted
		// between Since and Wait would otherwise be missed until the
		// next one arrives
		wait := ring.Wait()
		evs, next := ring.Since(cursor)
		cursor = next
		for i, e := range evs {
			data, jerr := json.Marshal(e)
			if jerr != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n",
				next-uint64(len(evs)-1-i), e.Kind, data)
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if ring.Closed() {
			// drain anything emitted between Since and Close
			if evs, next = ring.Since(cursor); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		}
	}
}

// recording serves a finished job's flight-recorder capture: NDJSON by
// default, the gzipped wire form with ?gz=1 (the decoder auto-detects
// either). 404s distinguish an unknown job from a job that has no
// recording (not submitted with options.record, or not finished yet).
func (a *api) recording(w http.ResponseWriter, r *http.Request) {
	rec, err := a.s.Recording(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	if rec == nil {
		writeError(w, http.StatusNotFound, "no_recording",
			"job has no recording: submit with options.record and wait for it to finish")
		return
	}
	gz := r.URL.Query().Get("gz") == "1"
	if gz {
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", r.PathValue("id")+".ndjson.gz"))
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	_ = rec.Encode(w, gz)
}

func (a *api) certificate(w http.ResponseWriter, r *http.Request) {
	cert, err := a.s.Certificate(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	if cert == nil {
		writeError(w, http.StatusNotFound, "no_certificate",
			"job has no certificate: submit with options.certify and wait for it to finish")
		return
	}
	writeJSON(w, http.StatusOK, cert)
}

// spans serves the job's finished spans, oldest first. Pollable while
// the job runs: spans appear as they end, the request root last.
func (a *api) spans(w http.ResponseWriter, r *http.Request) {
	recs, err := a.s.Spans(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"spans": recs})
}

// blackbox serves the job's black-box dump: frozen at the anomaly when
// the box flushed (worker panic, deadline, certification failure,
// watchdog stall), otherwise the rolling tail of recent solve events.
func (a *api) blackbox(w http.ResponseWriter, r *http.Request) {
	d, err := a.s.BlackBox(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// debugSolves serves a live snapshot of every in-flight search.
func (a *api) debugSolves(w http.ResponseWriter, r *http.Request) {
	solves := a.s.DebugSolves()
	if solves == nil {
		solves = []SolveDebug{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"solves": solves})
}

// version serves the build identity of the running binary.
func (a *api) version(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Version())
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request", the closest fit for a solve cancelled by a disconnecting
// caller (the response is usually unread anyway).
const statusClientClosedRequest = 499

func (a *api) decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, bool) {
	var req Request
	if !a.decodeJSON(w, r, "request", &req) {
		return nil, false
	}
	// adopt the caller's distributed-trace identity, if any (the header
	// is validated when the job's span collector is created)
	req.TraceParent = r.Header.Get("Traceparent")
	return &req, true
}

// decodeJSON decodes a request body under the configured size cap.
// Oversized bodies get the typed 413 envelope; the cap also protects
// the connection (MaxBytesReader closes it when the limit trips, so a
// huge upload is not drained for keep-alive).
func (a *api) decodeJSON(w http.ResponseWriter, r *http.Request, what string, v any) bool {
	if limit := a.s.cfg.MaxBodyBytes; limit > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("decoding %s: body exceeds the %d-byte limit", what, mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding %s: %v", what, err))
		return false
	}
	return true
}

// writeSubmitError maps submission failures: load shedding is a 429
// with a Retry-After header (the roadmap's backpressure contract — a
// full queue is a transient client-pacing problem, not a server
// fault), 503 is reserved for a closed service, and everything else
// is a 400 from request validation.
func writeSubmitError(w http.ResponseWriter, err error) {
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		writeShed(w, shed)
	case errors.Is(err, ErrQueueFull):
		// a bare sentinel from a Go caller's error chain; the service
		// itself always sheds with a *ShedError
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, ShedQueueFull, err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
	default:
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	}
}

// writeShed renders a load-shed rejection: 429, the shed code as the
// envelope code, and Retry-After in whole seconds (rounded up — the
// header has one-second resolution and retrying early defeats the
// point).
func writeShed(w http.ResponseWriter, shed *ShedError) {
	secs := int64((shed.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, http.StatusTooManyRequests, shed.Code, shed.Error())
}

// errorEnvelope is the uniform error body of every endpoint.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
