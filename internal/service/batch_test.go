package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"
)

// waitBatchDone polls the batch view until every job is terminal.
func waitBatchDone(t *testing.T, s *Service, id string, deadline time.Duration) BatchInfo {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		bi, err := s.Batch(id)
		if err != nil {
			t.Fatalf("batch %s: %v", id, err)
		}
		if bi.Done {
			return bi
		}
		if time.Now().After(end) {
			t.Fatalf("batch %s not done after %v: %+v", id, deadline, bi)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBatchWarmChainEquivalence is the batch-vs-individual-submit
// differential: the same neighboring instances (one graph, capacities
// apart) solved individually on one service and as a batch on another
// must produce identical verdicts — but the batch forms one warm
// chain, solves each distinct instance exactly once, serves the
// duplicate item from the cache, and re-solves the successors warm
// from their predecessor's cached build rather than cold.
func TestBatchWarmChainEquivalence(t *testing.T) {
	ctx := context.Background()
	caps := []int{230, 170, 200} // deliberately unsorted; the chain runs ascending
	mk := func(c int) *Request {
		r := fastRequest()
		r.Device.CapacityFG = c
		return r
	}

	// baseline: individual cold submissions
	solo := New(Config{Workers: 2})
	defer closeBounded(t, solo)
	want := map[int]int{} // capacity → optimal comm
	for _, c := range caps {
		info, err := solo.Solve(ctx, mk(c))
		if err != nil {
			t.Fatal(err)
		}
		if info.Status != StatusDone || !info.Result.Optimal {
			t.Fatalf("individual solve at C=%d: %+v", c, info)
		}
		want[c] = info.Result.Comm
	}
	if st := solo.Stats(); st.CacheMisses != 3 || st.CacheHits != 0 {
		t.Fatalf("individual path: misses=%d hits=%d, want 3/0", st.CacheMisses, st.CacheHits)
	}

	// the same instances as one batch, plus a duplicate of the last
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)
	items := []*Request{mk(caps[0]), mk(caps[1]), mk(caps[2]), mk(caps[2])}
	bi, err := s.SubmitBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(bi.Jobs) != len(items) {
		t.Fatalf("batch returned %d jobs for %d items", len(bi.Jobs), len(items))
	}
	if bi.Chains != 1 {
		t.Fatalf("batch formed %d chains, want 1 (all items share a structure)", bi.Chains)
	}

	final := waitBatchDone(t, s, bi.ID, 60*time.Second)
	for i, ji := range final.Jobs {
		if ji.Status != StatusDone {
			t.Fatalf("batch item %d (%s): %s (%s)", i, ji.ID, ji.Status, ji.Error)
		}
		if ji.Batch != bi.ID {
			t.Fatalf("batch item %d carries batch %q, want %q", i, ji.Batch, bi.ID)
		}
		c := items[i].Device.CapacityFG
		if !ji.Result.Optimal || ji.Result.Comm != want[c] {
			t.Fatalf("batch item %d (C=%d): comm %d optimal=%v, individual %d",
				i, c, ji.Result.Comm, ji.Result.Optimal, want[c])
		}
	}

	// dedup accounting: 3 distinct instances solved once each, the
	// duplicate served from the cache — hits counted once, not per item
	st := s.Stats()
	if st.CacheMisses != 3 {
		t.Fatalf("batch path ran %d fresh solves, want 3", st.CacheMisses)
	}
	if st.CacheHits != 1 {
		t.Fatalf("batch path counted %d cache hits, want 1 (the duplicate)", st.CacheHits)
	}
	// warm chaining: both non-duplicate successors must leave the cold
	// path (bounds-only neighbors of a cached build)
	if st.Delta.Warm+st.Delta.Reuse < 2 {
		t.Fatalf("chain successors stayed cold: delta %+v", st.Delta)
	}
	warmJobs := 0
	for _, ji := range final.Jobs {
		if ji.Delta != nil && (ji.Delta.Path == "warm" || ji.Delta.Path == "reuse") {
			warmJobs++
		}
	}
	if warmJobs == 0 {
		t.Fatal("no batch job reports a warm/reuse delta dispatch")
	}
	if st.Batches != 1 || st.Deferred != 0 {
		t.Fatalf("stats batches=%d deferred=%d, want 1/0", st.Batches, st.Deferred)
	}
}

// TestBatchValidation pins the batch-level failures: empty and
// oversized batches, and an invalid item rejecting the whole call
// with nothing enqueued.
func TestBatchValidation(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 2})
	defer closeBounded(t, s)

	if _, err := s.SubmitBatch(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := s.SubmitBatch([]*Request{fastRequest(), fastRequest(), fastRequest()}); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized batch: %v", err)
	}
	if _, err := s.SubmitBatch([]*Request{fastRequest(), {Graph: "not a graph"}}); err == nil {
		t.Fatal("batch with an invalid item accepted")
	}
	if st := s.Stats(); st.Submitted != 0 || st.Batches != 0 {
		t.Fatalf("failed batches enqueued work: %+v", st)
	}
	if _, err := s.Batch("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown batch: %v", err)
	}
}

// TestBatchAtomicAdmission: a batch that does not fit the queue budget
// as a whole is shed with one typed 429 error and nothing enqueued.
func TestBatchAtomicAdmission(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 4})

	blocker, err := s.Submit(heavyRequest(700))
	if err != nil {
		t.Fatal(err)
	}
	for s.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}

	// priority-0 budget is int(4*0.9) = 3; a 4-item batch cannot fit
	items := make([]*Request, 4)
	for i := range items {
		items[i] = heavyRequest(710 + i)
		items[i].Priority = 0
	}
	_, err = s.SubmitBatch(items)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-budget batch: %v", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Code != ShedQueueFull || shed.RetryAfter <= 0 {
		t.Fatalf("batch shed = %v", err)
	}
	if st := s.Stats(); st.Submitted != 1 || st.Queued != 0 || st.Deferred != 0 {
		t.Fatalf("shed batch left residue: %+v", st)
	}

	// a 3-item batch fits the same budget
	if _, err := s.SubmitBatch(items[:3]); err != nil {
		t.Fatalf("in-budget batch: %v", err)
	}

	s.Cancel(blocker)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = s.Close(ctx)
}

// TestBatchRateAdmission pins rate admission over SubmitBatch: a batch
// of n items costs exactly n tokens (enqueueLocked must not re-admit
// items the batch already admitted atomically — double charging would
// empty the bucket mid-loop and orphan the items enqueued before the
// failure), an empty bucket sheds the whole batch with nothing
// enqueued, and a batch deeper than the bucket is rejected
// non-retryably instead of with a 429 the client would retry forever.
func TestBatchRateAdmission(t *testing.T) {
	s := New(Config{Workers: 2, Admission: Admission{Rate: 0.001, Burst: 3}})
	defer closeBounded(t, s)

	mk := func(c int) *Request {
		r := fastRequest()
		r.Device.CapacityFG = c
		return r
	}

	// deeper than Burst: permanently impossible at any wait, so the
	// rejection must be the non-retryable batch-too-large error, never
	// a retryable shed
	_, err := s.SubmitBatch([]*Request{mk(200), mk(210), mk(220), mk(230)})
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("over-burst batch: %v, want ErrBatchTooLarge", err)
	}
	var shed *ShedError
	if errors.As(err, &shed) {
		t.Fatalf("over-burst batch shed retryably (%+v); it can never be admitted", shed)
	}

	// exactly Burst items: the batch costs n tokens, not 2n, so it
	// fits the full bucket and every item enqueues
	bi, err := s.SubmitBatch([]*Request{mk(200), mk(210), mk(220)})
	if err != nil {
		t.Fatalf("batch within burst: %v (double admission would shed mid-batch)", err)
	}
	if len(bi.Jobs) != 3 {
		t.Fatalf("batch enqueued %d jobs, want 3", len(bi.Jobs))
	}
	if st := s.Stats(); st.Submitted != 3 {
		t.Fatalf("stats submitted = %d, want 3", st.Submitted)
	}

	// the bucket is now empty: a single submit sheds with rate_limited...
	if _, err := s.Submit(fastRequest()); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("submit on empty bucket: %v, want ErrRateLimited", err)
	}
	// ...and a further batch sheds whole — all or none, nothing enqueued
	_, err = s.SubmitBatch([]*Request{mk(240), mk(250)})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("batch on empty bucket: %v, want ErrRateLimited", err)
	}
	if !errors.As(err, &shed) || shed.Code != ShedRateLimited || shed.RetryAfter <= 0 {
		t.Fatalf("batch rate shed = %v", err)
	}
	if st := s.Stats(); st.Submitted != 3 || st.Batches != 1 {
		t.Fatalf("shed batch left residue: submitted=%d batches=%d", st.Submitted, st.Batches)
	}

	// the admitted batch is intact — every job finishes
	final := waitBatchDone(t, s, bi.ID, 60*time.Second)
	for i, ji := range final.Jobs {
		if ji.Status != StatusDone {
			t.Fatalf("batch item %d (%s): %s (%s)", i, ji.ID, ji.Status, ji.Error)
		}
	}
}

// TestV1BatchHTTP drives POST /v1/batch and GET /v1/batch/{id} end to
// end: 202 with the batch view, per-item job records reachable under
// /v1/jobs, and the typed 400/404 envelopes.
func TestV1BatchHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	r1 := fastRequest()
	r2 := fastRequest()
	r2.Device.CapacityFG = 200
	resp, data := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Items: []*Request{r1, r2}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, data)
	}
	var bi BatchInfo
	if err := json.Unmarshal(data, &bi); err != nil {
		t.Fatal(err)
	}
	if bi.ID == "" || len(bi.Jobs) != 2 {
		t.Fatalf("batch view %+v", bi)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur BatchInfo
		if resp := getJSON(t, ts.URL+"/v1/batch/"+bi.ID, &cur); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status: %d", resp.StatusCode)
		}
		if cur.Done {
			for i, ji := range cur.Jobs {
				if ji.Status != StatusDone {
					t.Fatalf("batch job %d: %s (%s)", i, ji.Status, ji.Error)
				}
				var single JobInfo
				if resp := getJSON(t, ts.URL+"/v1/jobs/"+ji.ID, &single); resp.StatusCode != http.StatusOK {
					t.Fatalf("job %s: %d", ji.ID, resp.StatusCode)
				}
				if single.Batch != bi.ID {
					t.Fatalf("job %s carries batch %q, want %q", ji.ID, single.Batch, bi.ID)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s never finished: %+v", bi.ID, cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// typed failures: empty batch, null item, unknown batch id
	resp, data = postJSON(t, ts.URL+"/v1/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", resp.StatusCode, data)
	}
	var e errorEnvelope
	if err := json.Unmarshal(data, &e); err != nil || e.Error.Code != "bad_request" {
		t.Fatalf("empty batch envelope: %s", data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/batch", map[string]any{"items": []any{nil}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("null item: status %d: %s", resp.StatusCode, data)
	}
	if resp := getJSON(t, ts.URL+"/v1/batch/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown batch: status %d", resp.StatusCode)
	}
	_ = s
}
